package transport

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ensemble/internal/event"
)

// collectFrame runs WalkFrame and returns copies of the surfaced subs.
func collectFrame(t *testing.T, data []byte) [][]byte {
	t.Helper()
	var subs [][]byte
	n := WalkFrame(data, func(sub []byte) {
		subs = append(subs, append([]byte(nil), sub...))
	})
	if n != len(subs) {
		t.Fatalf("WalkFrame returned %d, surfaced %d subs", n, len(subs))
	}
	return subs
}

func frameOf(subs ...[]byte) []byte {
	buf := []byte{FrameMagic}
	for _, s := range subs {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

func TestWalkFrameRoundTrip(t *testing.T) {
	want := [][]byte{[]byte("alpha"), []byte("b"), bytes.Repeat([]byte{0xAB}, 300)}
	got := collectFrame(t, frameOf(want...))
	if len(got) != len(want) {
		t.Fatalf("got %d subs, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("sub %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWalkFrameNonFrame(t *testing.T) {
	raw := []byte{0x01, 0x02, 0x03}
	got := collectFrame(t, raw)
	if len(got) != 1 || !bytes.Equal(got[0], raw) {
		t.Fatalf("non-frame should surface whole buffer, got %v", got)
	}
}

func TestWalkFrameEmptyAndMagicOnly(t *testing.T) {
	if got := collectFrame(t, []byte{FrameMagic}); len(got) != 0 {
		t.Fatalf("magic-only frame: got %d subs, want 0", len(got))
	}
	// Empty buffer is not a frame: surfaced whole (as an empty sub).
	if got := collectFrame(t, nil); len(got) != 1 {
		t.Fatalf("empty buffer: got %d subs, want 1", len(got))
	}
}

func TestWalkFrameZeroLengthSub(t *testing.T) {
	got := collectFrame(t, frameOf([]byte("x"), nil, []byte("y")))
	if len(got) != 3 {
		t.Fatalf("got %d subs, want 3", len(got))
	}
	if len(got[1]) != 0 {
		t.Fatalf("middle sub should be empty, got %q", got[1])
	}
}

func TestWalkFrameTruncatedPrefix(t *testing.T) {
	// 0x80 starts a multi-byte uvarint that never completes.
	data := append(frameOf([]byte("ok")), 0x80)
	got := collectFrame(t, data)
	if len(got) != 2 {
		t.Fatalf("got %d subs, want 2 (good sub + garbage tail)", len(got))
	}
	if !bytes.Equal(got[0], []byte("ok")) {
		t.Fatalf("first sub = %q, want %q", got[0], "ok")
	}
	if !bytes.Equal(got[1], []byte{0x80}) {
		t.Fatalf("garbage tail = %v, want [0x80]", got[1])
	}
}

func TestWalkFrameLengthOverrun(t *testing.T) {
	// Declared length 100, only 3 bytes follow.
	data := append([]byte{FrameMagic}, binary.AppendUvarint(nil, 100)...)
	data = append(data, 1, 2, 3)
	got := collectFrame(t, data)
	if len(got) != 1 {
		t.Fatalf("got %d subs, want 1 (the overrun tail)", len(got))
	}
	if !bytes.Equal(got[0], []byte{1, 2, 3}) {
		t.Fatalf("tail = %v, want [1 2 3]", got[0])
	}
}

func TestWalkFrameHugeLengthWraps(t *testing.T) {
	// A length near MaxUint64 would wrap int addition; must be treated
	// as an overrun, not a panic or silent success.
	data := append([]byte{FrameMagic}, binary.AppendUvarint(nil, ^uint64(0)>>1)...)
	data = append(data, 9)
	got := collectFrame(t, data)
	if len(got) != 1 || !bytes.Equal(got[0], []byte{9}) {
		t.Fatalf("wrapping length should surface tail, got %v", got)
	}
}

// frameSink records transmissions for batcher tests.
type frameSink struct {
	calls []sinkCall
}

type sinkCall struct {
	cast     bool
	from, to event.Addr
	data     []byte
}

func (s *frameSink) Send(from, to event.Addr, data []byte) {
	s.calls = append(s.calls, sinkCall{from: from, to: to, data: append([]byte(nil), data...)})
}

func (s *frameSink) Cast(from event.Addr, data []byte) {
	s.calls = append(s.calls, sinkCall{cast: true, from: from, data: append([]byte(nil), data...)})
}

func TestBatcherCoalescesPerDestination(t *testing.T) {
	sink := &frameSink{}
	b := NewBatcher(sink, 7, 0)
	b.Send(1, []byte("a1"))
	b.Send(1, []byte("a2"))
	b.Send(2, []byte("b1"))
	if b.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", b.Pending())
	}
	b.Flush()
	if len(sink.calls) != 2 {
		t.Fatalf("sink saw %d calls, want 2", len(sink.calls))
	}
	subs := collectFrame(t, sink.calls[0].data)
	if len(subs) != 2 || string(subs[0]) != "a1" || string(subs[1]) != "a2" {
		t.Fatalf("peer-1 frame subs = %q", subs)
	}
	if sink.calls[0].to != 1 || sink.calls[1].to != 2 || sink.calls[0].from != 7 {
		t.Fatalf("bad addressing: %+v", sink.calls)
	}
	st := b.Stats()
	if st.SubPackets != 3 || st.Frames != 2 || st.Flushes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBatcherPreservesAppendOrder(t *testing.T) {
	// cast, send-to-1, cast: the send must close the first cast frame so
	// the second cast cannot be merged ahead of it (per-peer FIFO).
	sink := &frameSink{}
	b := NewBatcher(sink, 3, 0)
	b.Cast([]byte("c1"))
	b.Send(1, []byte("s1"))
	b.Cast([]byte("c2"))
	b.Flush()
	if len(sink.calls) != 3 {
		t.Fatalf("sink saw %d calls, want 3 (no merge across the send)", len(sink.calls))
	}
	if !sink.calls[0].cast || sink.calls[1].cast || !sink.calls[2].cast {
		t.Fatalf("emission order broken: %+v", sink.calls)
	}
}

func TestBatcherImmediateMode(t *testing.T) {
	sink := &frameSink{}
	b := NewBatcher(sink, 0, 0)
	b.SetImmediate(true)
	b.Cast([]byte("x"))
	b.Cast([]byte("y"))
	if len(sink.calls) != 2 {
		t.Fatalf("immediate mode: sink saw %d calls, want 2", len(sink.calls))
	}
	if b.Pending() != 0 {
		t.Fatalf("immediate mode left %d pending frames", b.Pending())
	}
}

func TestBatcherSizeThresholdFlushes(t *testing.T) {
	sink := &frameSink{}
	b := NewBatcher(sink, 0, 32)
	big := bytes.Repeat([]byte{0xEE}, 40)
	b.Send(1, big)
	if len(sink.calls) != 1 {
		t.Fatalf("oversized wire should flush, sink saw %d calls", len(sink.calls))
	}
	subs := collectFrame(t, sink.calls[0].data)
	if len(subs) != 1 || !bytes.Equal(subs[0], big) {
		t.Fatalf("oversized sub mangled: %d subs", len(subs))
	}
}

func TestBatcherCopiesCallerBuffer(t *testing.T) {
	sink := &frameSink{}
	b := NewBatcher(sink, 0, 0)
	wire := []byte("live")
	b.Send(1, wire)
	wire[0] = 'X'
	b.Flush()
	subs := collectFrame(t, sink.calls[0].data)
	if string(subs[0]) != "live" {
		t.Fatalf("batcher aliased caller buffer: %q", subs[0])
	}
}

// discardSink consumes frames without retaining them, like the netsim
// transmit path does (it copies into its own pools during the call).
type discardSink struct{ frames int }

func (s *discardSink) Send(from, to event.Addr, data []byte) { s.frames++ }
func (s *discardSink) Cast(from event.Addr, data []byte)     { s.frames++ }

func TestBatcherRecyclesBuffers(t *testing.T) {
	sink := &discardSink{}
	b := NewBatcher(sink, 0, 0)
	wa, wb := []byte("wire-to-1"), []byte("wire-to-2")
	for round := 0; round < 3; round++ {
		b.Send(1, wa)
		b.Send(2, wb)
		b.Flush()
	}
	allocs := testing.AllocsPerRun(100, func() {
		b.Send(1, wa)
		b.Send(2, wb)
		b.Flush()
	})
	if allocs > 0 {
		t.Fatalf("steady-state flush allocates %.1f/op, want 0", allocs)
	}
	if sink.frames == 0 {
		t.Fatal("sink saw no frames")
	}
}

func TestRegisterCodecAfterSealPanics(t *testing.T) {
	// Force the seal (any lookup does it).
	if _, err := lookupCodecByLayer("definitely-not-registered"); err == nil {
		t.Fatal("bogus layer lookup unexpectedly succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RegisterCodec after seal did not panic")
		}
	}()
	RegisterCodec(HeaderCodec{Layer: "late-layer", ID: 250})
}

func BenchmarkHeaderCodecLookup(b *testing.B) {
	// "test-a" (id 200) is registered by codec_test.go's init.
	if _, err := lookupCodecByLayer("test-a"); err != nil {
		b.Skip("test codec not registered")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lookupCodecByLayer("test-a"); err != nil {
			b.Fatal(err)
		}
		if _, err := lookupCodecByID(200); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBatcherFlushCauseTaxonomy pins the per-cause flush accounting:
// every flush lands in exactly one cause bucket, and the buckets map to
// their triggers — buffer size, entry end, drain barrier, with the
// remainder explicit.
func TestBatcherFlushCauseTaxonomy(t *testing.T) {
	sink := &frameSink{}
	b := NewBatcher(sink, 7, 16) // tiny budget to force size flushes

	b.Send(1, []byte("0123456789abcdef")) // oversize entry: size flush
	b.Send(1, []byte("x"))
	b.FlushFor(FlushEntryEnd)
	b.Send(2, []byte("y"))
	b.FlushFor(FlushBarrier)
	b.Send(2, []byte("z"))
	b.Flush()
	b.Flush() // empty: must not count

	st := b.Stats()
	if st.SizeFlushes != 1 || st.EntryEndFlushes != 1 || st.BarrierFlushes != 1 {
		t.Fatalf("cause buckets = size %d, entry-end %d, barrier %d; want 1 each",
			st.SizeFlushes, st.EntryEndFlushes, st.BarrierFlushes)
	}
	if st.Flushes != 4 {
		t.Fatalf("total flushes = %d, want 4", st.Flushes)
	}
	if explicit := st.Flushes - st.SizeFlushes - st.EntryEndFlushes - st.BarrierFlushes; explicit != 1 {
		t.Fatalf("explicit remainder = %d, want 1", explicit)
	}
}
