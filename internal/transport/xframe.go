package transport

// Cross-frame delta encoding with generation-tagged per-peer state, plus
// the adaptive per-destination flush controller — the last rungs of the
// wire-format ladder (classic 0xB7 frames → intra-frame delta 0xB8 →
// cross-frame delta 0xB9). Intra-frame delta still transmits every
// frame's *first* sub full; here the sender keeps a per-destination
// shadow of the last sub it emitted, stamps every frame with a
// (generation, frame-sequence) header, and lets the first sub delta
// against the previous frame's last sub. The receiver keeps the mirror
// per (from, to, cast) link and only applies the cross-frame base when
// the header proves continuity: same generation, exactly the next frame
// sequence.
//
// Cross-frame wire format:
//
//	magic    byte = XFrameMagic
//	flags    byte (0x01 = cast chain; other bits reserved, must be 0)
//	gen      uvarint — the sender's generation for this chain
//	frameSeq uvarint — 1-based frame counter within the generation
//	subs     the 0xB8 delta sub grammar (see delta.go); the first sub
//	         may be delta- or prefix-encoded against the cross-frame
//	         base instead of riding full
//
// Safety over loss and reordering is by construction (the communication-
// closure discipline of "Causing Communication Closure", PAPERS.md): a
// frame that does not extend the receiver's mirror exactly is decoded
// statelessly — fine when its first sub is full, a single garbage sub
// otherwise (stray-packet accounting, repaired by the stack's NAK
// layer) — and the receiver answers with a resync packet:
//
//	magic byte = ResyncMagic, flags byte (0x01 = cast chain), uvarint gen
//
// The sender bumps the chain's generation when the resync names its
// current generation (so one loss triggers one bump, not a storm per
// duplicate resync), on view install (core.Member), and on peer rebind
// (UDPNet) — after a bump the next frame starts a fresh generation with
// a full first sub, which any receiver adopts statelessly. Frames from
// a generation older than the receiver's mirror are stale by definition
// (pre-bump stragglers) and land whole in stray accounting with no
// resync answer.
//
// The adaptive flush controller rides the same per-destination state:
// instead of unconditionally emitting at burst end, a frame whose
// destination has been receiving appends at short observed gaps may be
// held — briefly, and only while small — so near-future appends
// coalesce into it. Holding only ever applies to a suffix of the frame
// queue, so the Batcher's global guarantee (emission order == append
// order) is untouched; size-threshold and explicit flushes always emit
// everything.

import (
	"encoding/binary"

	"ensemble/internal/event"
)

// XFrameMagic is the first byte of a cross-frame delta frame.
const XFrameMagic = 0xB9

// ResyncMagic is the first byte of a resync packet — a receiver's
// request that the sender start a fresh generation for one chain.
const ResyncMagic = 0xBA

// xflagCast marks the cast chain; point-to-point chains leave it clear.
// All other flag bits are reserved and must be zero.
const xflagCast = 0x01

// IsXFrame reports whether data begins a cross-frame delta frame.
func IsXFrame(data []byte) bool { return len(data) > 0 && data[0] == XFrameMagic }

// IsResync reports whether data begins a resync packet. Substrates check
// it before handing raw packets to the member, and the member routes it
// into its Batcher instead of the stack.
func IsResync(data []byte) bool { return len(data) > 0 && data[0] == ResyncMagic }

// AppendResync appends a resync packet for the given chain to buf.
func AppendResync(buf []byte, cast bool, gen uint64) []byte {
	flag := byte(0)
	if cast {
		flag = xflagCast
	}
	buf = append(buf, ResyncMagic, flag)
	return binary.AppendUvarint(buf, gen)
}

// ParseResync decodes a resync packet. The parse is strict — reserved
// flag bits, non-minimal varints, or trailing bytes all report !ok — so
// a corrupted packet falls through to stray accounting instead of
// bumping a generation it never named.
func ParseResync(data []byte) (cast bool, gen uint64, ok bool) {
	if len(data) < 3 || data[0] != ResyncMagic || data[1]&^byte(xflagCast) != 0 {
		return false, 0, false
	}
	g, k := binary.Uvarint(data[2:])
	if k <= 0 || k != uvarintLen(g) || 2+k != len(data) {
		return false, 0, false
	}
	return data[1]&xflagCast != 0, g, true
}

// parseXHeader decodes a cross-frame header, returning the offset of the
// first sub. Strict like ParseResync: reserved flag bits or non-minimal
// varints report !ok, and the caller surfaces the whole frame as one
// garbage sub (a bit-flipped header must never seed a mirror).
func parseXHeader(data []byte) (cast bool, gen, seq uint64, off int, ok bool) {
	if len(data) < 4 || data[0] != XFrameMagic || data[1]&^byte(xflagCast) != 0 {
		return false, 0, 0, 0, false
	}
	cast = data[1]&xflagCast != 0
	off = 2
	g, k := binary.Uvarint(data[off:])
	if k <= 0 || k != uvarintLen(g) {
		return false, 0, 0, 0, false
	}
	off += k
	s, k := binary.Uvarint(data[off:])
	if k <= 0 || k != uvarintLen(s) || s == 0 {
		return false, 0, 0, 0, false
	}
	off += k
	return cast, g, s, off, true
}

// xKey identifies one outgoing chain: the cast chain is shared by all
// receivers (a cast frame is one buffer fanned out verbatim, so its
// delta chain must be one sequence too), point-to-point chains are per
// destination.
type xKey struct {
	cast bool
	to   event.Addr
}

// peerState is the sender's per-chain record: the generation/frame
// counters stamped into headers, the shadow of the last sub emitted
// (the next frame's cross-frame base), and the inter-append gap
// estimate the adaptive flush controller reads.
type peerState struct {
	gen      uint64
	frameSeq uint64
	// shadow is the last wire appended to the chain's previous frame,
	// with its parsed header; hasShadow is false in a fresh generation,
	// which is exactly what forces the next first sub to ride full.
	shadow     []byte
	shadowMeta subMeta
	hasShadow  bool
	// sinceFull counts consecutive frames whose first sub rode the
	// cross-frame shadow; at xAnchorEvery the chain emits an anchor
	// (full first sub) instead, resetting the count.
	sinceFull int
	// lastAppend / gapEWMA feed the adaptive flush controller: the time
	// of the chain's last append and a smoothed inter-append gap
	// (-1 until two appends have been seen).
	lastAppend int64
	gapEWMA    int64
}

// xAnchorEvery caps consecutive delta-first frames per chain: after this
// many, the next frame is an anchor (full first sub, self-contained).
// One lost frame renders every later delta-first frame already in flight
// undecodable until the resync round trip completes; anchors bound that
// amplification to the cadence and let a broken chain heal passively —
// a receiver adopts the anchor statelessly — even when the resync itself
// is lost. The cost is one full first sub per xAnchorEvery frames, the
// same refresh/efficiency trade header-compression schemes over lossy
// links settle by periodic full headers. 16 keeps the worst-case
// undecodable run under one resync round trip on the simulated link
// while paying the refresh tax half as often as the initial cadence of
// 8 did.
const xAnchorEvery = 16

// peer returns (creating on first use) the chain state for a destination.
func (b *Batcher) peer(cast bool, to event.Addr) *peerState {
	k := xKey{cast: cast}
	if !cast {
		k.to = to
	}
	st := b.peers[k]
	if st == nil {
		st = &peerState{gen: 1, lastAppend: -1, gapEWMA: -1}
		if b.peers == nil {
			b.peers = make(map[xKey]*peerState)
		}
		b.peers[k] = st
	}
	return st
}

// EnableCrossFrame switches the batcher to the cross-frame delta format
// (magic XFrameMagic): frames carry generation-tagged headers and the
// first sub of a frame may delta against the last sub of the previous
// frame to the same destination. Implies EnableDelta; receivers must
// walk these frames with FrameWalker.WalkLink so the per-link mirror
// state exists. Pending frames are flushed first.
func (b *Batcher) EnableCrossFrame(prefixUvarints int) {
	b.EnableDelta(prefixUvarints)
	b.xframe = true
}

// CrossFrameEnabled reports whether the cross-frame format is selected.
func (b *Batcher) CrossFrameEnabled() bool { return b.xframe }

// closeTail records the newest frame's trailing delta state into its
// chain's shadow, making it the cross-frame base for that chain's next
// frame. Idempotent; called whenever the tail frame stops being
// appendable (a new frame supersedes it, or a flush is about to emit).
func (b *Batcher) closeTail() {
	n := len(b.frames)
	if n == 0 || !b.xframe {
		return
	}
	f := &b.frames[n-1]
	if f.st == nil {
		return
	}
	f.st.shadow = append(f.st.shadow[:0], b.prev...)
	f.st.shadowMeta = f.base
	f.st.hasShadow = true
}

// BumpGenerations starts a fresh generation on every chain — the view-
// install hook: a new view changes the epoch prefix of every wire, the
// group composition, and possibly the member's own rank, so no receiver
// mirror built under the old view may be extended. Pending frames are
// flushed first (their headers already name the old generation).
func (b *Batcher) BumpGenerations() {
	if len(b.peers) == 0 {
		return
	}
	b.Flush()
	for _, st := range b.peers {
		st.gen++
		st.frameSeq = 0
		st.hasShadow = false
	}
	b.stats.GenBumps++
}

// BumpPeer starts a fresh generation on the chains a rebinding peer can
// see — its point-to-point chain and the shared cast chain. UDPNet calls
// it when a member id reappears from a new socket address: the restarted
// process has no mirror state, so every chain it receives must restart
// with a full first sub.
func (b *Batcher) BumpPeer(to event.Addr) {
	bumped := false
	for _, k := range [2]xKey{{cast: false, to: to}, {cast: true}} {
		if st := b.peers[k]; st != nil {
			if !bumped {
				b.Flush()
				bumped = true
			}
			st.gen++
			st.frameSeq = 0
			st.hasShadow = false
		}
	}
	if bumped {
		b.stats.GenBumps++
	}
}

// HandleResync reacts to a peer's resync packet: if the named chain is
// still in the generation the receiver could not decode, bump it. The
// generation check is what stops a bump storm — duplicate or delayed
// resyncs name a generation the sender has already left and are ignored.
func (b *Batcher) HandleResync(from event.Addr, cast bool, gen uint64) {
	k := xKey{cast: cast}
	if !cast {
		k.to = from
	}
	st := b.peers[k]
	if st == nil || st.gen != gen {
		return
	}
	b.Flush()
	st.gen++
	st.frameSeq = 0
	st.hasShadow = false
	b.stats.ResyncBumps++
}

// AdaptiveFlushConfig tunes the per-destination flush controller.
type AdaptiveFlushConfig struct {
	// MaxHoldNs bounds how long a frame may be held past its creation.
	MaxHoldNs int64
	// GapNs is the inter-append gap ceiling: a chain whose smoothed gap
	// exceeds it is not expected to append again soon, so its frames are
	// never held.
	GapNs int64
	// MinBytes is the size ceiling: a frame at or past it is worth a
	// transmission on its own and is never held.
	MinBytes int
}

// DefaultAdaptiveFlush returns the tuning core.Member uses: hold at most
// 2ms, only for chains appending faster than ~500µs apart, and only
// while the frame is under 600 bytes. The gap ceiling sits above the
// steady cast cadences the workloads run (200µs rounds) — a chain
// carrying back-to-back rounds is exactly the one worth holding through
// a barrier so the next round's subs ride the same frame — and the hold
// cap spans a couple of drain barriers even when the adaptive quantum
// has widened past the submission interval. The layer sweep tick (50ms)
// and the barrier cadence bound staleness even if traffic stops dead.
func DefaultAdaptiveFlush() AdaptiveFlushConfig {
	return AdaptiveFlushConfig{MaxHoldNs: 2_000_000, GapNs: 500_000, MinBytes: 600}
}

// EnableAdaptiveFlush turns the controller on. now is the owner's clock
// (virtual nanoseconds under netsim, monotonic under UDPNet) — holding
// decisions read only this clock and per-chain counters, so simulated
// runs stay deterministic. Only FlushEntryEnd and FlushBarrier causes
// consult the controller; size-threshold and explicit flushes always
// emit everything.
func (b *Batcher) EnableAdaptiveFlush(now func() int64, cfg AdaptiveFlushConfig) {
	if now == nil {
		panic("transport: EnableAdaptiveFlush needs a clock")
	}
	b.Flush()
	b.adaptive = true
	b.now = now
	b.aCfg = cfg
}

// DisableAdaptiveFlush restores unconditional flushing — the ablation
// knob — emitting anything currently held.
func (b *Batcher) DisableAdaptiveFlush() {
	b.adaptive = false
	b.now = nil
	b.Flush()
}

// AdaptiveFlushEnabled reports whether the controller is on.
func (b *Batcher) AdaptiveFlushEnabled() bool { return b.adaptive }

// SetHoldObserver installs a per-frame queue-residency observer: at
// every emit, obs receives the frame's age (emit time minus creation
// time, in the adaptive clock's nanoseconds). The member wires an
// obs.Histogram's Observe here — the hold-duration distribution that
// says what the adaptive controller's holds actually cost in latency.
// Only meaningful with the adaptive controller on (frames are not
// timestamped otherwise); nil uninstalls.
func (b *Batcher) SetHoldObserver(obs func(int64)) { b.holdObs = obs }

// PendingSubs reports the number of wires awaiting a flush across all
// pending frames — what a held flush decision left behind.
func (b *Batcher) PendingSubs() int {
	n := 0
	for i := range b.frames {
		n += b.frames[i].subs
	}
	return n
}

// holdable reports whether the adaptive controller may keep f pending:
// still small, still young, and headed to a chain whose observed append
// cadence says more wires are imminent.
func (b *Batcher) holdable(f *batchFrame, now int64) bool {
	if f.st == nil || len(f.buf) >= b.aCfg.MinBytes {
		return false
	}
	if now-f.born >= b.aCfg.MaxHoldNs {
		return false
	}
	g := f.st.gapEWMA
	return g >= 0 && g <= b.aCfg.GapNs
}

// linkKey identifies one incoming chain at the receiver: the mirror of
// the sender's xKey, qualified by the sender's address.
type linkKey struct {
	from, to event.Addr
	cast     bool
}

// Reorder-stash tuning. Neither netsim links nor UDP are FIFO, and a
// frame whose first sub rides the cross-frame base is undecodable until
// its predecessor lands — so instead of surfacing it as garbage the
// receiver parks it, bounded, and drains it in sequence once the mirror
// catches up. xStashCap caps the parked frames per link (beyond it a
// frame falls back to the resync path). xStashNag is the liveness
// threshold: one or two parked frames are almost always plain
// reordering with the predecessor still in flight, but a stash that
// keeps growing means the hole is a real loss, so every arrival past
// the threshold reports a generation miss and earns a resync.
const (
	xStashCap = 32
	xStashNag = 2
)

// genState is one generation's trailing decode state: the frame counter
// last accepted and the last surfaced sub (always mirror-owned storage —
// frame buffers are recycled).
type genState struct {
	gen      uint64 // 0 = dead
	frameSeq uint64
	base     subMeta
	prev     []byte
}

// linkMirror is the receiver's copy of a chain's trailing state. It
// tracks two generations: cur, the one the chain is on, and old, the one
// it just left. A generation bump happens at the sender while frames of
// the outgoing generation are still in flight; without old, every one of
// them would land whole in garbage accounting, turning one loss into a
// window's worth — and each garbage frame is a sub the stack's NAK layer
// must then re-fetch, which amplifies further under sustained loss.
// With old, a pre-bump straggler that arrives in continuity decodes
// exactly as it would have before the bump.
type linkMirror struct {
	valid bool
	cur   genState
	old   genState
	// stash holds reordered frames of generation sgen that arrived before
	// their predecessor, keyed by frame sequence and drained in order as
	// the matching generation's state advances past each hole.
	sgen  uint64
	stash map[uint64][]byte
}

// WalkResult reports what WalkLink saw, so substrates can account
// stale-generation frames and answer generation misses with a resync.
type WalkResult struct {
	// Subs is the number of subs surfaced (garbage subs included).
	Subs int
	// XFrame reports that the packet carried the cross-frame magic.
	XFrame bool
	// Cast and Gen echo the frame header (valid when XFrame and the
	// header parsed) — what a resync answer must name.
	Cast bool
	Gen  uint64
	// GenMiss reports that the frame could not be decoded without mirror
	// state the receiver does not have: the substrate should answer with
	// a resync for (Cast, Gen) so the sender starts a fresh generation.
	GenMiss bool
	// StaleGen reports a frame from a generation older than the mirror —
	// a pre-bump straggler, surfaced whole as garbage, never answered.
	StaleGen bool
	// Stashed reports that the frame was parked in the reorder stash to
	// wait for its predecessor (it may still set GenMiss past xStashNag).
	Stashed bool
}

// WalkLink is Walk with the receive link identified, which is what
// activates cross-frame decoding: 0xB9 frames are checked against the
// (from, to, cast) mirror and extend it on exact continuity; anything
// else behaves exactly like Walk. Classic and intra-delta frames never
// touch mirror state, so mixing walkers per packet is safe.
func (w *FrameWalker) WalkLink(from, to event.Addr, data []byte, fn func(sub []byte)) WalkResult {
	var r WalkResult
	if !IsXFrame(data) {
		r.Subs = w.Walk(data, fn)
		return r
	}
	r.XFrame = true
	cast, gen, seq, off, ok := parseXHeader(data)
	if !ok {
		// A corrupted header cannot be trusted to name a chain: surface
		// the whole frame as garbage and do not answer.
		fn(data)
		r.Subs = 1
		return r
	}
	r.Cast, r.Gen = cast, gen
	key := linkKey{from: from, to: to, cast: cast}
	m := w.links[key]
	if m != nil && m.valid && gen == m.cur.gen && seq == m.cur.frameSeq+1 {
		// Exact continuity: decode against the mirror, then advance it.
		w.base = m.cur.base
		subs, last, clean := w.walkSubs(data, off, m.cur.prev, fn)
		r.Subs = subs
		if clean {
			m.cur.frameSeq = seq
			m.cur.base = w.base
			if subs > 0 {
				m.cur.prev = append(m.cur.prev[:0], last...)
			}
			w.drainStash(m, &m.cur, &r, fn)
		} else {
			// The chain is broken mid-frame; nothing after this frame can
			// extend the mirror either. Invalidate and ask for a restart.
			m.valid = false
			m.old.gen = 0
			r.GenMiss = true
		}
		return r
	}
	if m != nil && m.old.gen != 0 && gen == m.old.gen && seq == m.old.frameSeq+1 {
		// A pre-bump straggler in continuity with the generation the chain
		// just left: decode it exactly as the pre-bump mirror would have.
		w.base = m.old.base
		subs, last, clean := w.walkSubs(data, off, m.old.prev, fn)
		r.Subs = subs
		if clean {
			m.old.frameSeq = seq
			m.old.base = w.base
			if subs > 0 {
				m.old.prev = append(m.old.prev[:0], last...)
			}
			w.drainStash(m, &m.old, &r, fn)
		} else {
			// The outgoing generation is broken mid-frame; further
			// stragglers are garbage, but the live chain is untouched.
			m.old.gen = 0
			r.StaleGen = true
		}
		return r
	}
	if m != nil && m.valid && gen < m.cur.gen {
		// A straggler with no continuity to give: pre-bump garbage,
		// surfaced whole for stray accounting, never answered.
		fn(data)
		r.Subs = 1
		r.StaleGen = true
		return r
	}
	// No usable mirror (first contact, newer generation, or a sequence
	// gap). A frame whose first sub needs the cross-frame base cannot
	// surface anything but garbage here — links reorder, so park it in
	// the stash while its predecessor may still be in flight.
	if off < len(data) && data[off] != subFull {
		if m != nil && m.valid && gen == m.cur.gen && seq <= m.cur.frameSeq {
			// A duplicate (or late reordered copy) of a frame this mirror
			// already consumed: the chain is healthy, so answering would
			// bump a live generation once per duplicate — a resync storm.
			// Stale garbage, not missed.
			fn(data[off:])
			r.Subs = 1
			r.StaleGen = true
			return r
		}
		if m == nil {
			m = &linkMirror{}
			if w.links == nil {
				w.links = make(map[linkKey]*linkMirror)
			}
			w.links[key] = m
		}
		if gen > m.sgen {
			// The stash tracks one generation — the newest seen; older
			// parked frames can never extend a mirror that moved past them.
			m.stash = nil
			m.sgen = gen
		}
		if gen == m.sgen && len(m.stash) < xStashCap {
			if m.stash == nil {
				m.stash = make(map[uint64][]byte)
			}
			if _, dup := m.stash[seq]; !dup {
				m.stash[seq] = append([]byte(nil), data...)
			}
			r.Stashed = true
			if len(m.stash) <= xStashNag {
				return r
			}
		}
		r.GenMiss = true
		return r
	}
	// Self-contained frame (full first sub): decode statelessly and adopt
	// the mirror forward.
	w.base = subMeta{}
	subs, last, clean := w.walkSubs(data, off, nil, fn)
	r.Subs = subs
	if !clean {
		r.GenMiss = true
		return r
	}
	// Adopt only forward (newer generation, or a later frame of the
	// current one): a duplicated old frame must not rewind the mirror
	// under the in-order successor's feet.
	if subs > 0 && (m == nil || !m.valid || gen > m.cur.gen || (gen == m.cur.gen && seq > m.cur.frameSeq)) {
		if m == nil {
			m = &linkMirror{}
			if w.links == nil {
				w.links = make(map[linkKey]*linkMirror)
			}
			w.links[key] = m
		}
		if m.valid && gen > m.cur.gen {
			// The chain moved on; keep the outgoing generation's trailing
			// state so its in-flight stragglers still decode.
			m.old = m.cur
			m.cur.prev = nil
		}
		m.valid = true
		m.cur.gen = gen
		m.cur.frameSeq = seq
		m.cur.base = w.base
		m.cur.prev = append(m.cur.prev[:0], last...)
		w.drainStash(m, &m.cur, &r, fn)
	}
	return r
}

// drainStash surfaces parked successors of generation state g in frame
// order until the next hole. Entries g moved past are dead: their
// content was either consumed already or skipped by a forward adoption,
// and the stack's NAK layer recovers whatever the skip dropped.
func (w *FrameWalker) drainStash(m *linkMirror, g *genState, r *WalkResult, fn func(sub []byte)) {
	if len(m.stash) == 0 || m.sgen != g.gen {
		if m.sgen < m.cur.gen && m.sgen != m.old.gen {
			m.stash = nil
		}
		return
	}
	for s := range m.stash {
		if s <= g.frameSeq {
			delete(m.stash, s)
		}
	}
	for {
		d, ok := m.stash[g.frameSeq+1]
		if !ok {
			return
		}
		delete(m.stash, g.frameSeq+1)
		_, _, seq, off, _ := parseXHeader(d) // parsed strict when stashed
		w.base = g.base
		subs, last, clean := w.walkSubs(d, off, g.prev, fn)
		r.Subs += subs
		if clean {
			g.frameSeq = seq
			g.base = w.base
			if subs > 0 {
				g.prev = append(g.prev[:0], last...)
			}
		} else {
			if g == &m.cur {
				m.valid = false
				m.old.gen = 0
				r.GenMiss = true
			} else {
				m.old.gen = 0
				r.StaleGen = true
			}
			return
		}
	}
}

// InvalidateFrom drops every mirror fed by one sender address — the
// receive half of a peer rebind: a restarted sender's chains share
// nothing with the old process's, whatever generations its headers name.
func (w *FrameWalker) InvalidateFrom(from event.Addr) {
	for k, m := range w.links {
		if k.from == from {
			m.valid = false
			m.old.gen = 0
			m.stash = nil
		}
	}
}
