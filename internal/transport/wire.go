// Package transport implements the Ensemble Transport module: it sits
// below the bottom protocol layer, marshals an event's header stack and
// payload into a byte sequence before it is sent onto the network, and
// unmarshals on receipt (paper §4.2, Fig. 4). Ensemble has no fixed wire
// format for headers (§4, item 2): the transport serializes whatever
// header stack it is handed, using per-layer codecs registered by the
// micro-protocol components. The optimizer's compressed wire format
// (a short stack identifier plus only the varying fields) is implemented
// in compress.go.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Writer builds a wire image. It emulates a scatter-gather (iovec)
// interface: headers are appended into one buffer and the payload is kept
// as a separate segment, gathered only at the final Bytes call, mirroring
// how Ensemble avoids payload copies with the UNIX scatter-gather
// capability (§4.2: "we avoid copying by making use of the scatter-gather
// interfaces").
type Writer struct {
	hdr     []byte
	payload []byte
	out     []byte
}

// Reset clears the writer for reuse, keeping its buffer.
func (w *Writer) Reset() {
	w.hdr = w.hdr[:0]
	w.payload = nil
}

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.hdr = append(w.hdr, b) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.hdr = binary.AppendUvarint(w.hdr, v) }

// Varint appends a signed varint.
func (w *Writer) Varint(v int64) { w.hdr = binary.AppendVarint(w.hdr, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Bytes64 appends a length-prefixed byte slice.
func (w *Writer) Bytes64(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.hdr = append(w.hdr, b...)
}

// SetPayload attaches the payload segment (not copied until Bytes).
func (w *Writer) SetPayload(p []byte) { w.payload = p }

// HeaderLen reports the bytes written so far, excluding the payload.
func (w *Writer) HeaderLen() int { return len(w.hdr) }

// Bytes gathers the header and payload segments into one freshly
// allocated wire image the caller owns. Hot paths use Seal instead.
func (w *Writer) Bytes() []byte {
	out := make([]byte, 0, len(w.hdr)+len(w.payload))
	out = append(out, w.hdr...)
	out = append(out, w.payload...)
	return out
}

// Seal gathers the header and payload segments into an internal buffer
// the writer reuses: the returned slice is valid only until the next
// Seal or Reset on this writer. Callers that retain the wire image past
// that point must copy it.
func (w *Writer) Seal() []byte {
	w.out = append(w.out[:0], w.hdr...)
	w.out = append(w.out, w.payload...)
	return w.out
}

// AppendTo gathers into dst, for callers that manage their own buffers.
func (w *Writer) AppendTo(dst []byte) []byte {
	dst = append(dst, w.hdr...)
	return append(dst, w.payload...)
}

// ErrTruncated reports a wire image shorter than its encoding claims.
var ErrTruncated = errors.New("transport: truncated wire image")

// Reader consumes a wire image.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset points the reader at buf, clearing any prior error, so one
// Reader can decode many wire images without reallocating.
func (r *Reader) Reset(buf []byte) {
	r.buf, r.off, r.err = buf, 0, nil
}

// Err returns the first decode error encountered.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Bytes64 reads a length-prefixed byte slice (aliasing the input buffer).
func (r *Reader) Bytes64() []byte {
	n := r.Uvarint()
	if r.err != nil || r.off+int(n) > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// Rest returns all remaining bytes (the payload segment).
func (r *Reader) Rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

// Remaining reports how many bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// ErrBadWire wraps decode failures with context.
func ErrBadWire(format string, args ...any) error {
	return fmt.Errorf("transport: bad wire image: "+format, args...)
}
