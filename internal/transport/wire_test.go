package transport

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: every value written is read back identically, in order.
func TestWriterReaderRoundtrip(t *testing.T) {
	f := func(b1 byte, u uint64, v int64, flag bool, blob []byte, payload []byte) bool {
		var w Writer
		w.Byte(b1)
		w.Uvarint(u)
		w.Varint(v)
		w.Bool(flag)
		w.Bytes64(blob)
		w.SetPayload(payload)
		r := NewReader(w.Bytes())
		ok := r.Byte() == b1 &&
			r.Uvarint() == u &&
			r.Varint() == v &&
			r.Bool() == flag &&
			bytes.Equal(r.Bytes64(), blob) &&
			bytes.Equal(r.Rest(), payload) &&
			r.Err() == nil
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReaderTruncation(t *testing.T) {
	var w Writer
	w.Uvarint(1 << 40)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Uvarint()
		if r.Err() == nil {
			t.Fatalf("truncation at %d undetected", cut)
		}
	}
}

func TestReaderBytes64Truncation(t *testing.T) {
	var w Writer
	w.Bytes64(make([]byte, 100))
	full := w.Bytes()
	r := NewReader(full[:50])
	if r.Bytes64() != nil || r.Err() == nil {
		t.Fatal("truncated Bytes64 undetected")
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.Byte(1)
	w.SetPayload([]byte{9})
	w.Reset()
	if w.HeaderLen() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestAppendTo(t *testing.T) {
	var w Writer
	w.Byte(0xAB)
	w.SetPayload([]byte{1, 2})
	out := w.AppendTo([]byte{0xFF})
	if !bytes.Equal(out, []byte{0xFF, 0xAB, 1, 2}) {
		t.Fatalf("AppendTo = %v", out)
	}
}

func TestReaderRemaining(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.Byte()
	if r.Remaining() != 2 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
}
