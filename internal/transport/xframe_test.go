package transport

import (
	"bytes"
	"testing"

	"ensemble/internal/event"
)

// xlink is a one-directional test link: a cross-frame Batcher at `from`
// whose flushed frames are walked by a mirror-keeping walker at `to`.
type xlink struct {
	t    *testing.T
	sink *frameSink
	b    *Batcher
	w    *FrameWalker
	from event.Addr
	to   event.Addr
	// fed counts sink calls already walked, so feed() is incremental.
	fed int
}

func newXLink(t *testing.T, nPrefix int, from, to event.Addr) *xlink {
	sink := &frameSink{}
	b := NewBatcher(sink, from, 0)
	b.EnableCrossFrame(nPrefix)
	return &xlink{t: t, sink: sink, b: b, w: NewFrameWalker(nPrefix, true), from: from, to: to}
}

// feed walks every not-yet-walked frame and returns the surfaced subs
// plus the last frame's WalkResult.
func (l *xlink) feed() ([][]byte, WalkResult) {
	l.t.Helper()
	var subs [][]byte
	var res WalkResult
	for ; l.fed < len(l.sink.calls); l.fed++ {
		res = l.w.WalkLink(l.from, l.to, l.sink.calls[l.fed].data, func(sub []byte) {
			subs = append(subs, append([]byte(nil), sub...))
		})
	}
	return subs, res
}

// skip drops not-yet-walked frames on the floor (simulated loss).
func (l *xlink) skip(n int) { l.fed += n }

func wantSubs(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d subs, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("sub %d = %x, want %x", i, got[i], want[i])
		}
	}
}

func TestXFrameFirstSubDeltasAcrossFrames(t *testing.T) {
	prefix := []uint64{7, 3}
	l := newXLink(t, 2, 1, 2)
	w1 := cwire(prefix, 9, 4, 100, 0xAA)
	w2 := cwire(prefix, 9, 4, 101, 0xBB)
	w3 := cwire(prefix, 9, 4, 102, 0xCC)
	l.b.Send(2, w1)
	l.b.Flush()
	l.b.Send(2, w2)
	l.b.Send(2, w3)
	l.b.Flush()
	subs, res := l.feed()
	wantSubs(t, subs, [][]byte{w1, w2, w3})
	if res.GenMiss || res.StaleGen || !res.XFrame {
		t.Fatalf("clean chain reported %+v", res)
	}
	st := l.b.Stats()
	if st.XFrames != 2 || st.XFirstFull != 1 || st.XFirstDelta != 1 {
		t.Fatalf("first-sub split wrong: %+v", st)
	}
	// The second frame's first sub rode as a delta: the frame must be
	// smaller than a frame carrying the same wire full.
	second := l.sink.calls[1].data
	if len(second) >= len(l.sink.calls[0].data) {
		t.Fatalf("cross-frame first sub saved nothing: %d vs %d bytes",
			len(second), len(l.sink.calls[0].data))
	}
}

func TestXFrameOpaqueWiresChainViaPrefix(t *testing.T) {
	l := newXLink(t, 0, 1, 2)
	a := []byte("gossip-header-payload-one")
	b := []byte("gossip-header-payload-two")
	l.b.Send(2, a)
	l.b.Flush()
	l.b.Send(2, b)
	l.b.Flush()
	subs, res := l.feed()
	wantSubs(t, subs, [][]byte{a, b})
	if res.GenMiss {
		t.Fatalf("opaque chain reported a miss: %+v", res)
	}
	if st := l.b.Stats(); st.XFirstDelta != 1 {
		t.Fatalf("opaque first sub should prefix-delta across frames: %+v", st)
	}
}

func TestXFrameLossTriggersResyncAndRecovers(t *testing.T) {
	prefix := []uint64{1, 1}
	l := newXLink(t, 2, 1, 2)
	wires := make([][]byte, 8)
	for i := range wires {
		wires[i] = cwire(prefix, 5, 1, int64(50+i), byte(i))
	}
	l.b.Send(2, wires[0])
	l.b.Flush()
	subs, _ := l.feed()
	wantSubs(t, subs, wires[:1])

	// Lose the second frame entirely.
	l.b.Send(2, wires[1])
	l.b.Flush()
	l.skip(1)

	// The third frame's first sub needed the lost base: it parks in the
	// reorder stash — the hole could be plain reordering with the
	// predecessor still in flight — with no delivery, no garbage, and no
	// miss yet.
	l.b.Send(2, wires[2])
	l.b.Flush()
	subs, res := l.feed()
	if len(subs) != 0 || !res.Stashed || res.GenMiss || res.StaleGen {
		t.Fatalf("post-loss frame: %d subs, res %+v", len(subs), res)
	}

	// The hole never fills: once the stash outgrows the nag threshold
	// the walker reports the miss that earns a resync.
	l.b.Send(2, wires[3])
	l.b.Flush()
	l.b.Send(2, wires[4])
	l.b.Flush()
	subs, res = l.feed()
	if len(subs) != 0 || !res.GenMiss {
		t.Fatalf("stash past nag must miss: %d subs, res %+v", len(subs), res)
	}

	// The resync round trip: the receiver names the generation it could
	// not decode, the sender bumps, and the chain restarts full-first.
	l.b.HandleResync(2, res.Cast, res.Gen)
	if st := l.b.Stats(); st.ResyncBumps != 1 {
		t.Fatalf("resync must bump once: %+v", st)
	}
	// A duplicate resync for the old generation is ignored.
	l.b.HandleResync(2, res.Cast, res.Gen)
	if st := l.b.Stats(); st.ResyncBumps != 1 {
		t.Fatalf("duplicate resync must not bump again: %+v", st)
	}

	l.b.Send(2, wires[5])
	l.b.Flush()
	l.b.Send(2, wires[6])
	l.b.Flush()
	subs, res = l.feed()
	wantSubs(t, subs, wires[5:7])
	if res.GenMiss {
		t.Fatalf("fresh generation did not re-adopt: %+v", res)
	}
}

func TestXFrameStaleGenerationIsGarbageNotResync(t *testing.T) {
	prefix := []uint64{2, 2}
	l := newXLink(t, 2, 1, 2)
	l.b.Send(2, cwire(prefix, 1, 1, 10))
	l.b.Flush()
	stale := l.sink.calls[0].data // a gen-1 frame, replayed later
	l.feed()

	l.b.BumpGenerations()
	l.b.Send(2, cwire(prefix, 1, 1, 11))
	l.b.Flush()
	if _, res := l.feed(); res.GenMiss {
		t.Fatalf("gen-2 full-first frame missed: %+v", res)
	}

	var n int
	res := l.w.WalkLink(l.from, l.to, stale, func([]byte) { n++ })
	if !res.StaleGen || res.GenMiss || n != 1 {
		t.Fatalf("stale replay: %d subs, res %+v", n, res)
	}
	// And the mirror survived: the live chain keeps decoding.
	l.b.Send(2, cwire(prefix, 1, 1, 12))
	l.b.Flush()
	if _, res := l.feed(); res.GenMiss {
		t.Fatalf("stale replay corrupted the mirror: %+v", res)
	}
}

func TestXFrameDuplicateDoesNotRewindMirror(t *testing.T) {
	prefix := []uint64{3, 3}
	l := newXLink(t, 2, 1, 2)
	w1 := cwire(prefix, 1, 1, 20)
	w2 := cwire(prefix, 1, 1, 21)
	w3 := cwire(prefix, 1, 1, 22)
	l.b.Send(2, w1)
	l.b.Flush()
	first := l.sink.calls[0].data
	l.feed()
	l.b.Send(2, w2)
	l.b.Flush()
	l.feed()

	// Replay frame 1 (full-first, decodable statelessly): it must not
	// rewind the mirror under the in-order successor.
	res := l.w.WalkLink(l.from, l.to, first, func([]byte) {})
	if res.GenMiss || res.StaleGen {
		t.Fatalf("full-first duplicate should decode quietly: %+v", res)
	}
	l.b.Send(2, w3)
	l.b.Flush()
	subs, res := l.feed()
	wantSubs(t, subs, [][]byte{w3})
	if res.GenMiss {
		t.Fatalf("duplicate rewound the mirror: %+v", res)
	}
}

func TestXFrameCastChainSharedAcrossReceivers(t *testing.T) {
	prefix := []uint64{4, 4}
	sink := &frameSink{}
	b := NewBatcher(sink, 1, 0)
	b.EnableCrossFrame(2)
	recv := []*FrameWalker{NewFrameWalker(2, true), NewFrameWalker(2, true)}
	w1 := cwire(prefix, 1, 1, 30)
	w2 := cwire(prefix, 1, 1, 31)
	b.Cast(w1)
	b.Flush()
	b.Cast(w2)
	b.Flush()
	for i, w := range recv {
		for _, call := range sink.calls {
			var got [][]byte
			res := w.WalkLink(1, event.Addr(10+i), call.data, func(sub []byte) {
				got = append(got, append([]byte(nil), sub...))
			})
			if res.GenMiss || !res.Cast {
				t.Fatalf("receiver %d: %+v", i, res)
			}
		}
	}
	if st := b.Stats(); st.XFirstDelta != 1 {
		t.Fatalf("cast chain should delta across frames: %+v", st)
	}
}

func TestXFrameBumpPeerRestartsBothChains(t *testing.T) {
	prefix := []uint64{5, 5}
	sink := &frameSink{}
	b := NewBatcher(sink, 1, 0)
	b.EnableCrossFrame(2)
	b.Send(2, cwire(prefix, 1, 1, 1))
	b.Cast(cwire(prefix, 1, 1, 2))
	b.Flush()
	b.BumpPeer(2)
	b.Send(2, cwire(prefix, 1, 1, 3))
	b.Cast(cwire(prefix, 1, 1, 4))
	b.Flush()
	// After the bump both chains restart: all four frames are full-first.
	if st := b.Stats(); st.XFirstFull != 4 || st.GenBumps != 1 {
		t.Fatalf("BumpPeer must restart pt2pt and cast chains: %+v", st)
	}
	// A rebind of a peer we never sent to directly still restarts the
	// cast chain — the restarted process receives casts with no mirror.
	b.BumpPeer(99)
	if st := b.Stats(); st.GenBumps != 2 {
		t.Fatalf("rebind must restart the cast chain: %+v", st)
	}
	// With no chains at all, BumpPeer is a no-op.
	b2 := NewBatcher(&frameSink{}, 1, 0)
	b2.EnableCrossFrame(2)
	b2.BumpPeer(99)
	if st := b2.Stats(); st.GenBumps != 0 {
		t.Fatalf("no-chain bump counted: %+v", st)
	}
}

func TestXFrameInvalidateFromForcesStatelessDecode(t *testing.T) {
	prefix := []uint64{6, 6}
	l := newXLink(t, 2, 1, 2)
	l.b.Send(2, cwire(prefix, 1, 1, 40))
	l.b.Flush()
	l.feed()
	l.w.InvalidateFrom(1)
	// The next frames' first subs delta against state the receiver just
	// dropped. They cannot decode, but the walker parks them in the
	// reorder stash first — a short gap usually means the predecessor is
	// still in flight — and only nags for a resync once the stash keeps
	// growing, proving the hole is a real discontinuity.
	var res WalkResult
	for i := 0; i <= xStashNag; i++ {
		l.b.Send(2, cwire(prefix, 1, 1, 41+int64(i)))
		l.b.Flush()
		var subs [][]byte
		subs, res = l.feed()
		if len(subs) != 0 || !res.Stashed {
			t.Fatalf("frame %d: undecodable frame must stash silently: %d subs, %+v", i, len(subs), res)
		}
		if wantMiss := i >= xStashNag; res.GenMiss != wantMiss {
			t.Fatalf("frame %d: GenMiss=%v, want %v: %+v", i, res.GenMiss, wantMiss, res)
		}
	}
	l.b.HandleResync(2, res.Cast, res.Gen)
	l.b.Send(2, cwire(prefix, 1, 1, 42))
	l.b.Flush()
	subs, res := l.feed()
	if res.GenMiss || len(subs) != 1 {
		t.Fatalf("post-invalidate recovery failed: %d subs, %+v", len(subs), res)
	}
}

func TestResyncRoundTripAndStrictParse(t *testing.T) {
	pkt := AppendResync(nil, true, 300)
	if !IsResync(pkt) || IsFrame(pkt) {
		t.Fatal("resync packet misclassified")
	}
	cast, gen, ok := ParseResync(pkt)
	if !ok || !cast || gen != 300 {
		t.Fatalf("ParseResync = %v %d %v", cast, gen, ok)
	}
	bad := [][]byte{
		nil,
		{ResyncMagic},
		{ResyncMagic, 0x02, 0x01},       // reserved flag bit
		{ResyncMagic, 0x00, 0x80},       // truncated uvarint
		{ResyncMagic, 0x00, 0x80, 0x00}, // non-minimal uvarint
		append(AppendResync(nil, false, 7), 0xFF), // trailing bytes
	}
	for i, b := range bad {
		if _, _, ok := ParseResync(b); ok {
			t.Fatalf("bad resync %d parsed: %x", i, b)
		}
	}
}

func TestXFrameCorruptHeaderIsGarbageAndSeedsNothing(t *testing.T) {
	prefix := []uint64{8, 8}
	l := newXLink(t, 2, 1, 2)
	l.b.Send(2, cwire(prefix, 1, 1, 60))
	l.b.Flush()
	frame := l.sink.calls[0].data
	for _, corrupt := range [][]byte{
		{XFrameMagic},                   // truncated after magic
		{XFrameMagic, 0x01},             // no generation
		{XFrameMagic, 0x80, 0x01, 0x01}, // reserved flag bit
		{XFrameMagic, 0x00, 0x80},       // truncated gen uvarint
		{XFrameMagic, 0x00, 0x01, 0x00}, // frameSeq 0 is reserved
		func() []byte { // bit-flipped flags byte on a real frame
			c := append([]byte(nil), frame...)
			c[1] ^= 0x40
			return c
		}(),
	} {
		var n int
		res := l.w.WalkLink(1, 2, corrupt, func([]byte) { n++ })
		if n != 1 || res.GenMiss || res.StaleGen {
			t.Fatalf("corrupt header %x: %d subs, res %+v", corrupt, n, res)
		}
	}
	// The real frame still adopts cleanly afterwards: corruption seeded
	// no mirror state.
	var got [][]byte
	res := l.w.WalkLink(1, 2, frame, func(sub []byte) {
		got = append(got, append([]byte(nil), sub...))
	})
	if res.GenMiss || len(got) != 1 || !bytes.Equal(got[0], cwire(prefix, 1, 1, 60)) {
		t.Fatalf("clean frame after corruption: %+v / %x", res, got)
	}
}

func TestXFramePlainWalkDecodesStatelessly(t *testing.T) {
	prefix := []uint64{9, 9}
	l := newXLink(t, 2, 1, 2)
	w1 := cwire(prefix, 1, 1, 70)
	l.b.Send(2, w1)
	l.b.Flush()
	l.b.Send(2, cwire(prefix, 1, 1, 71))
	l.b.Flush()
	// Frame 1 is self-contained: plain Walk decodes it. Frame 2's first
	// sub needs the cross-frame base: one garbage sub, no panic — and no
	// mirror state was consulted or created.
	blind := NewFrameWalker(2, true)
	var got [][]byte
	n := blind.Walk(l.sink.calls[0].data, func(sub []byte) {
		got = append(got, append([]byte(nil), sub...))
	})
	if n != 1 || !bytes.Equal(got[0], w1) {
		t.Fatalf("blind walk of full-first frame: %d subs %x", n, got)
	}
	if n := blind.Walk(l.sink.calls[1].data, func([]byte) {}); n != 1 {
		t.Fatalf("blind walk of delta-first frame surfaced %d subs, want 1 garbage", n)
	}
}

func TestXFrameFutureGenerationAdoptsWhenSelfContained(t *testing.T) {
	// A receiver that was restarted mid-generation sees "future" state:
	// whatever the header claims, a full-first frame adopts statelessly.
	prefix := []uint64{1, 2}
	l := newXLink(t, 2, 1, 2)
	l.b.BumpGenerations() // no chains yet: must be a no-op
	l.b.Send(2, cwire(prefix, 1, 1, 80))
	l.b.Flush()
	l.b.BumpGenerations()
	l.b.BumpGenerations()
	l.b.Send(2, cwire(prefix, 1, 1, 81))
	l.b.Flush()
	l.skip(1) // receiver never saw generation 1
	subs, res := l.feed()
	if res.GenMiss || len(subs) != 1 {
		t.Fatalf("future-generation full-first frame: %d subs, %+v", len(subs), res)
	}
	// And continuity holds from there.
	l.b.Send(2, cwire(prefix, 1, 1, 82))
	l.b.Flush()
	subs, res = l.feed()
	if res.GenMiss || len(subs) != 1 || !bytes.Equal(subs[0], cwire(prefix, 1, 2, 82)) && !bytes.Equal(subs[0], cwire(prefix, 1, 1, 82)) {
		t.Fatalf("continuity after adoption: %d subs, %+v", len(subs), res)
	}
}

// fakeClock is a settable clock for adaptive-flush tests.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64 { return c.t }

func TestAdaptiveFlushHoldsAndAgesOut(t *testing.T) {
	prefix := []uint64{1, 1}
	sink := &frameSink{}
	b := NewBatcher(sink, 1, 0)
	b.EnableCrossFrame(2)
	clk := &fakeClock{}
	b.EnableAdaptiveFlush(clk.now, AdaptiveFlushConfig{MaxHoldNs: 250_000, GapNs: 120_000, MinBytes: 600})

	// Two appends 10µs apart establish a fast cadence for peer 2.
	b.Send(2, cwire(prefix, 1, 1, 1))
	clk.t += 10_000
	b.Send(2, cwire(prefix, 1, 1, 2))
	if n := b.FlushFor(FlushEntryEnd); n != 0 {
		t.Fatalf("fast chain should hold at entry end, emitted %d", n)
	}
	if b.PendingSubs() != 2 || len(sink.calls) != 0 {
		t.Fatalf("held frame lost: pending %d, calls %d", b.PendingSubs(), len(sink.calls))
	}
	if st := b.Stats(); st.Holds != 1 {
		t.Fatalf("hold not counted: %+v", st)
	}
	// More appends keep landing in the held frame.
	clk.t += 10_000
	b.Send(2, cwire(prefix, 1, 1, 3))
	// Past MaxHold the frame ages out and the barrier emits it.
	clk.t += 300_000
	if n := b.FlushFor(FlushBarrier); n != 1 {
		t.Fatalf("aged frame must emit, got %d", n)
	}
	if len(sink.calls) != 1 {
		t.Fatalf("expected one coalesced frame, got %d", len(sink.calls))
	}
	// The coalesced frame decodes to all three wires.
	var got int
	NewFrameWalker(2, true).WalkLink(1, 2, sink.calls[0].data, func([]byte) { got++ })
	if got != 3 {
		t.Fatalf("coalesced frame carries %d subs, want 3", got)
	}
}

func TestAdaptiveFlushNeverHoldsSlowOrUnknownChains(t *testing.T) {
	prefix := []uint64{1, 1}
	sink := &frameSink{}
	b := NewBatcher(sink, 1, 0)
	b.EnableCrossFrame(2)
	clk := &fakeClock{}
	b.EnableAdaptiveFlush(clk.now, DefaultAdaptiveFlush())

	// First-ever append: cadence unknown, no hold.
	b.Send(2, cwire(prefix, 1, 1, 1))
	if n := b.FlushFor(FlushEntryEnd); n != 1 {
		t.Fatalf("unknown cadence must not hold, emitted %d", n)
	}
	// Slow chain: gaps way past GapNs, no hold.
	clk.t += 50_000_000
	b.Send(2, cwire(prefix, 1, 1, 2))
	clk.t += 50_000_000
	b.Send(2, cwire(prefix, 1, 1, 3))
	if n := b.FlushFor(FlushEntryEnd); n != 1 {
		t.Fatalf("slow chain must not hold, emitted %d", n)
	}
}

func TestAdaptiveFlushExplicitAndSizeForceEverything(t *testing.T) {
	prefix := []uint64{1, 1}
	sink := &frameSink{}
	b := NewBatcher(sink, 1, 0)
	b.EnableCrossFrame(2)
	clk := &fakeClock{}
	b.EnableAdaptiveFlush(clk.now, DefaultAdaptiveFlush())
	b.Send(2, cwire(prefix, 1, 1, 1))
	clk.t += 1000
	b.Send(2, cwire(prefix, 1, 1, 2))
	if n := b.FlushFor(FlushEntryEnd); n != 0 {
		t.Fatalf("expected hold, emitted %d", n)
	}
	if n := b.Flush(); n != 1 {
		t.Fatalf("explicit flush must emit held frames, got %d", n)
	}
	if b.PendingSubs() != 0 {
		t.Fatalf("pending after explicit flush: %d", b.PendingSubs())
	}
}

func TestAdaptiveFlushHoldsOnlySuffix(t *testing.T) {
	// Frame order must survive a partial flush: a held suffix may not
	// overtake an emitted prefix, and the next flush emits held frames
	// before anything newer.
	prefix := []uint64{1, 1}
	sink := &frameSink{}
	b := NewBatcher(sink, 1, 0)
	b.EnableCrossFrame(2)
	clk := &fakeClock{}
	b.EnableAdaptiveFlush(clk.now, AdaptiveFlushConfig{MaxHoldNs: 250_000, GapNs: 120_000, MinBytes: 600})
	// Establish fast cadence for peer 3 only.
	b.Send(3, cwire(prefix, 1, 1, 1))
	clk.t += 1000
	b.Send(3, cwire(prefix, 1, 1, 2))
	b.Flush()
	base := len(sink.calls)

	clk.t += 1000
	b.Send(2, cwire(prefix, 1, 1, 3)) // cadence unknown: not holdable
	b.Send(3, cwire(prefix, 1, 1, 4)) // fast: holdable, and newest
	if n := b.FlushFor(FlushBarrier); n != 1 {
		t.Fatalf("prefix emit: got %d frames", n)
	}
	if len(sink.calls) != base+1 || sink.calls[base].to != 2 {
		t.Fatalf("emitted wrong frame: %+v", sink.calls)
	}
	clk.t += 300_000
	if n := b.FlushFor(FlushBarrier); n != 1 {
		t.Fatalf("held frame must age out, got %d", n)
	}
	if sink.calls[base+1].to != 3 {
		t.Fatalf("held frame went to %d, want 3", sink.calls[base+1].to)
	}
	// The walker still decodes the reordered-in-time but in-order chain.
	w := NewFrameWalker(2, true)
	for _, c := range sink.calls {
		if res := w.WalkLink(1, c.to, c.data, func([]byte) {}); res.GenMiss {
			t.Fatalf("per-chain order broken: %+v", res)
		}
	}
}

func FuzzXFrameWalkLink(f *testing.F) {
	prefix := []uint64{7, 0xDEAD}
	mk := func(wires ...[]byte) []byte {
		sink := &frameSink{}
		b := NewBatcher(sink, 1, 0)
		b.EnableCrossFrame(2)
		for _, w := range wires {
			b.Send(2, w)
		}
		b.Flush()
		return sink.calls[0].data
	}
	f.Add(mk(cwire(prefix, 1, 0, 5, 0x01), cwire(prefix, 1, 0, 6)), false)
	f.Add([]byte{XFrameMagic, 0x00, 0x01, 0x01, subIsDelta, 0x02, 0x00}, true)
	f.Add([]byte{XFrameMagic, 0x01, 0xFF, 0x01}, false)
	f.Add(AppendResync(nil, true, 77), true)
	f.Add([]byte{XFrameMagic, 0x80}, false)
	f.Fuzz(func(t *testing.T, data []byte, seeded bool) {
		for _, stable := range []bool{true, false} {
			w := NewFrameWalker(2, stable)
			if seeded {
				// Pre-seed a mirror so continuity/stale paths run too.
				seed := mk(cwire(prefix, 1, 0, 9))
				w.WalkLink(1, 2, seed, func([]byte) {})
			}
			surfaced := 0
			w.WalkLink(1, 2, data, func(sub []byte) { surfaced += len(sub) })
			// Whatever arrived, every input byte must be accounted for:
			// the walker surfaces subs or garbage, never silently drops a
			// whole frame (headers excepted) or panics.
			w.WalkLink(1, 2, data, func([]byte) {}) // mirror state survives reuse
			w.Walk(data, func([]byte) {})           // link-blind decode never panics
		}
	})
}

// FuzzXFrameRoundTrip drives arbitrary wires through the cross-frame
// encoder and a mirror-keeping walker: across any frame boundary the
// walker must reproduce the original wires byte for byte.
func FuzzXFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint16(3), uint64(4), int64(5), int64(6), []byte{0xAA}, byte(2))
	f.Add(uint64(0), uint64(0), uint16(0), uint64(0), int64(1), int64(-1), []byte{}, byte(1))
	f.Fuzz(func(t *testing.T, p0, p1 uint64, id uint16, sender uint64, seq1, seq2 int64, rest []byte, split byte) {
		if len(rest) > 256 {
			rest = rest[:256]
		}
		prefix := []uint64{p0, p1}
		wires := [][]byte{
			cwire(prefix, id, sender, seq1, rest...),
			cwire(prefix, id, sender, seq2, rest...),
			cwire(prefix, id+1, sender+1, seq1, rest...),
			append([]byte{0x01}, rest...),
			append([]byte{0x01}, rest...),
		}
		l := newXLink(t, 2, 1, 2)
		for i, w := range wires {
			l.b.Send(2, w)
			if int(split)%len(wires) == i {
				l.b.Flush() // force a frame boundary mid-stream
			}
		}
		l.b.Flush()
		got, res := l.feed()
		if res.GenMiss || res.StaleGen {
			t.Fatalf("lossless chain reported %+v", res)
		}
		wantSubs(t, got, wires)
	})
}
