package transport

// Per-peer wire batching (writev-style coalescing). The paper's bypass
// engine already defers non-critical work inside one member's path (§4,
// item 3); this file extends the idea across the member/transport
// boundary: instead of handing each outgoing wire image to the network
// one syscall-shaped call at a time, wires headed to the same
// destination are appended into a coalesced *frame* — length-prefixed
// sub-packets sharing one buffer — and the network sees a single
// transmit per destination per flush window.
//
// Frame wire format:
//
//	magic     byte = FrameMagic
//	subs      repeated { uvarint length, length bytes }
//
// Safety ("Causing Communication Closure", Engelhardt & Moses): batching
// must coalesce, never reorder. The Batcher below guarantees something
// stronger than per-peer FIFO: it only ever appends to the *newest*
// frame in its queue and flushes frames in creation order, so the
// global emission order of wires is exactly the append order. A send to
// peer A between two casts therefore closes the open cast frame — the
// second cast starts a new one — rather than being overtaken by it.

import (
	"encoding/binary"

	"ensemble/internal/event"
)

// FrameMagic is the first byte of a batched frame. Members always emit
// data packets as frames (even a frame of one sub-packet), so a
// substrate that sees this magic knows the packet came from a Batcher;
// raw packets (control traffic, hand-crafted test packets) are passed
// through untouched.
const FrameMagic = 0xB7

// DefaultFrameBytes is the default size threshold: a frame is flushed
// rather than grown past roughly one MTU's worth of sub-packets.
const DefaultFrameBytes = 1400

// IsFrame reports whether data begins a batched frame.
func IsFrame(data []byte) bool { return len(data) > 0 && data[0] == FrameMagic }

// WalkFrame fans a batched frame out into its sub-packets, calling fn
// once per sub-packet in order, and returns the number of sub-packets
// surfaced. Malformed framing is never dropped silently: a truncated
// length prefix or a declared length overrunning the buffer surfaces
// the remaining bytes as one final (garbage) sub-packet, and a
// zero-length sub-packet surfaces as an empty one — downstream decoders
// count both as stray packets, exactly as they would a malformed raw
// packet. Calling WalkFrame on a non-frame is a programming error and
// surfaces the whole buffer as one sub-packet.
func WalkFrame(data []byte, fn func(sub []byte)) int {
	if !IsFrame(data) {
		fn(data)
		return 1
	}
	subs := 0
	off := 1
	for off < len(data) {
		n, k := binary.Uvarint(data[off:])
		if k <= 0 {
			// Truncated or overflowing length prefix: the tail is
			// undecodable as framing — hand it over as-is.
			fn(data[off:])
			return subs + 1
		}
		off += k
		end := off + int(n)
		if end < off || end > len(data) {
			// Declared length overruns the buffer.
			fn(data[off:])
			return subs + 1
		}
		// Three-index slice: the sub's capacity ends at its length, so a
		// receiver that appends to (rather than reslices) the sub cannot
		// scribble over the next sub's bytes in the shared frame buffer.
		fn(data[off:end:end])
		subs++
		off = end
	}
	return subs
}

// BatchSink consumes flushed frames. core.Network's transmit half
// (netsim.Net, netsim.Endpoint, netsim.UDPNet) satisfies it.
type BatchSink interface {
	Send(from, to event.Addr, data []byte)
	Cast(from event.Addr, data []byte)
}

// BatcherStats counts batching activity, for tests and benchmarks.
// SubPackets/Frames is the coalescing efficiency (1.0 = no batching).
type BatcherStats struct {
	// SubPackets counts wires appended.
	SubPackets int64
	// Frames counts frames handed to the sink.
	Frames int64
	// Flushes counts Flush calls that emitted at least one frame.
	Flushes int64
}

// batchFrame is one pending coalesced frame: a cast frame fans out to
// the whole group at flush time, a peer frame goes to one destination.
type batchFrame struct {
	cast bool
	to   event.Addr
	subs int
	buf  []byte
}

// Batcher coalesces outgoing wire images into per-destination frames.
// It is single-goroutine, like the member that owns it, and recycles
// its frame buffers so the steady-state hot path allocates nothing
// (the sink consumes frame data during the call, per the Network
// contract). Flush triggers: (a) the size threshold — a frame that
// would outgrow maxBytes flushes everything first; (b) the owner's
// end-of-sweep — core.Member flushes when its outermost entry point
// returns; (c) an explicit Flush at a scheduler barrier — the cluster
// harness flushes each member at the end of its drain phase.
type Batcher struct {
	sink      BatchSink
	from      event.Addr
	maxBytes  int
	immediate bool

	frames []batchFrame
	free   [][]byte
	stats  BatcherStats
}

// NewBatcher builds a batcher for the member at from, flushing frames
// into sink. maxBytes <= 0 selects DefaultFrameBytes.
func NewBatcher(sink BatchSink, from event.Addr, maxBytes int) *Batcher {
	if maxBytes <= 0 {
		maxBytes = DefaultFrameBytes
	}
	return &Batcher{sink: sink, from: from, maxBytes: maxBytes}
}

// SetImmediate switches coalescing off: every wire is flushed as its
// own single-sub frame during the call that appended it. This is the
// ablation knob for measuring what batching buys; the wire format is
// unchanged, so receivers cannot tell the difference.
func (b *Batcher) SetImmediate(on bool) {
	b.Flush()
	b.immediate = on
}

// Stats returns a snapshot of the batching counters.
func (b *Batcher) Stats() BatcherStats { return b.stats }

// Pending reports the number of frames awaiting a flush.
func (b *Batcher) Pending() int { return len(b.frames) }

// Send appends a point-to-point wire image headed to peer to. The data
// is copied during the call; the caller may reuse its buffer.
func (b *Batcher) Send(to event.Addr, wire []byte) { b.append(false, to, wire) }

// Cast appends a multicast wire image. The data is copied during the
// call.
func (b *Batcher) Cast(wire []byte) { b.append(true, 0, wire) }

func (b *Batcher) append(cast bool, to event.Addr, wire []byte) {
	b.stats.SubPackets++
	need := binary.MaxVarintLen32 + len(wire)
	f := b.tail(cast, to, need)
	f.buf = binary.AppendUvarint(f.buf, uint64(len(wire)))
	f.buf = append(f.buf, wire...)
	f.subs++
	if b.immediate || len(f.buf) >= b.maxBytes {
		b.Flush()
	}
}

// tail returns the frame to append into: the newest frame when it has
// the same destination and room, a fresh frame at the end of the queue
// otherwise. Only the newest frame is ever appendable — that is what
// makes emission order equal append order (see the file comment).
func (b *Batcher) tail(cast bool, to event.Addr, need int) *batchFrame {
	if n := len(b.frames); n > 0 {
		f := &b.frames[n-1]
		if f.cast == cast && (cast || f.to == to) && len(f.buf)+need <= b.maxBytes {
			return f
		}
	}
	var buf []byte
	if n := len(b.free); n > 0 {
		buf = b.free[n-1]
		b.free = b.free[:n-1]
	}
	b.frames = append(b.frames, batchFrame{cast: cast, to: to, buf: append(buf[:0], FrameMagic)})
	return &b.frames[len(b.frames)-1]
}

// Flush hands every pending frame to the sink, in creation order, and
// recycles the buffers. Safe to call with nothing pending.
func (b *Batcher) Flush() {
	if len(b.frames) == 0 {
		return
	}
	for i := range b.frames {
		f := &b.frames[i]
		if f.cast {
			b.sink.Cast(b.from, f.buf)
		} else {
			b.sink.Send(b.from, f.to, f.buf)
		}
		b.stats.Frames++
		b.free = append(b.free, f.buf)
		*f = batchFrame{}
	}
	b.frames = b.frames[:0]
	b.stats.Flushes++
}
