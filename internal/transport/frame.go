package transport

// Per-peer wire batching (writev-style coalescing). The paper's bypass
// engine already defers non-critical work inside one member's path (§4,
// item 3); this file extends the idea across the member/transport
// boundary: instead of handing each outgoing wire image to the network
// one syscall-shaped call at a time, wires headed to the same
// destination are appended into a coalesced *frame* — length-prefixed
// sub-packets sharing one buffer — and the network sees a single
// transmit per destination per flush window.
//
// Classic frame wire format (EnableDelta selects the delta-compressed
// variant — see delta.go):
//
//	magic     byte = FrameMagic
//	subs      repeated { uvarint length, length bytes }
//
// Safety ("Causing Communication Closure", Engelhardt & Moses): batching
// must coalesce, never reorder. The Batcher below guarantees something
// stronger than per-peer FIFO: it only ever appends to the *newest*
// frame in its queue and flushes frames in creation order, so the
// global emission order of wires is exactly the append order. A send to
// peer A between two casts therefore closes the open cast frame — the
// second cast starts a new one — rather than being overtaken by it.

import (
	"encoding/binary"

	"ensemble/internal/event"
)

// FrameMagic is the first byte of a batched frame. Members always emit
// data packets as frames (even a frame of one sub-packet), so a
// substrate that sees this magic knows the packet came from a Batcher;
// raw packets (control traffic, hand-crafted test packets) are passed
// through untouched.
const FrameMagic = 0xB7

// DefaultFrameBytes is the default size threshold: a frame is flushed
// rather than grown past roughly one MTU's worth of sub-packets.
const DefaultFrameBytes = 1400

// IsFrame reports whether data begins a batched frame — classic,
// delta-compressed (delta.go), or cross-frame (xframe.go). Pair it with
// FrameWalker.Walk (or WalkLink, which activates cross-frame state);
// WalkFrame below decodes only the classic format.
func IsFrame(data []byte) bool {
	return len(data) > 0 && (data[0] == FrameMagic || data[0] == DeltaFrameMagic || data[0] == XFrameMagic)
}

// WalkFrame fans a batched frame out into its sub-packets, calling fn
// once per sub-packet in order, and returns the number of sub-packets
// surfaced. Malformed framing is never dropped silently: a truncated
// length prefix or a declared length overrunning the buffer surfaces
// the remaining bytes as one final (garbage) sub-packet, and a
// zero-length sub-packet surfaces as an empty one — downstream decoders
// count both as stray packets, exactly as they would a malformed raw
// packet. Calling WalkFrame on a non-frame is a programming error and
// surfaces the whole buffer as one sub-packet.
func WalkFrame(data []byte, fn func(sub []byte)) int {
	if len(data) == 0 || data[0] != FrameMagic {
		fn(data)
		return 1
	}
	subs := 0
	off := 1
	for off < len(data) {
		n, k := binary.Uvarint(data[off:])
		if k <= 0 {
			// Truncated or overflowing length prefix: the tail is
			// undecodable as framing — hand it over as-is.
			fn(data[off:])
			return subs + 1
		}
		off += k
		end := off + int(n)
		if end < off || end > len(data) {
			// Declared length overruns the buffer.
			fn(data[off:])
			return subs + 1
		}
		// Three-index slice: the sub's capacity ends at its length, so a
		// receiver that appends to (rather than reslices) the sub cannot
		// scribble over the next sub's bytes in the shared frame buffer.
		fn(data[off:end:end])
		subs++
		off = end
	}
	return subs
}

// BatchSink consumes flushed frames. core.Network's transmit half
// (netsim.Net, netsim.Endpoint, netsim.UDPNet) satisfies it.
type BatchSink interface {
	Send(from, to event.Addr, data []byte)
	Cast(from event.Addr, data []byte)
}

// FlushCause says why a flush happened — the three triggers the
// batching design names (size threshold, owner's entry end, scheduler
// drain barrier) plus explicit calls from tests and mode switches.
// BatcherStats counts flushes per cause, which is the figure that shows
// *where* coalescing windows actually close on a given workload.
type FlushCause uint8

const (
	// FlushExplicit is a direct Flush() call (tests, mode switches,
	// deployments forcing wires out before blocking).
	FlushExplicit FlushCause = iota
	// FlushSize is the size-threshold trigger: a frame would outgrow
	// maxBytes (immediate mode counts here too — its threshold is
	// "every wire").
	FlushSize
	// FlushEntryEnd is the owner's end-of-entry trigger: core.Member
	// flushes when its outermost entry point returns.
	FlushEntryEnd
	// FlushBarrier is the scheduler drain-barrier trigger: the cluster
	// (or UDP burst loop) flushes each member at the end of its drain.
	FlushBarrier
)

// BatcherStats counts batching activity, for tests and benchmarks.
// SubPackets/Frames is the coalescing efficiency (1.0 = no batching).
type BatcherStats struct {
	// SubPackets counts wires appended.
	SubPackets int64
	// Frames counts frames handed to the sink.
	Frames int64
	// Flushes counts Flush calls that emitted at least one frame.
	Flushes int64
	// SizeFlushes, EntryEndFlushes, and BarrierFlushes split Flushes by
	// cause; the remainder (Flushes minus the three) were explicit.
	SizeFlushes, EntryEndFlushes, BarrierFlushes int64
	// DeltaSubs counts wires that went out field-delta-encoded against
	// their in-frame predecessor (always 0 with delta disabled).
	DeltaSubs int64
	// PrefixSubs counts wires that went out as shared-prefix subs — the
	// shape-agnostic fallback for wires the field delta cannot parse
	// (always 0 with delta disabled).
	PrefixSubs int64
	// FrameBytes counts frame bytes handed to the sink — the batcher's
	// own bytes-on-wire figure, for substrates that do not keep one.
	FrameBytes int64
	// XFrames counts cross-frame (generation-tagged) frames created;
	// XFirstFull and XFirstDelta split them by whether the first sub rode
	// full or encoded against the previous frame's last sub — the figure
	// that says how often the cross-frame base actually paid off.
	XFrames, XFirstFull, XFirstDelta int64
	// GenBumps counts local generation bumps (view installs, peer
	// rebinds); ResyncBumps counts bumps forced by a peer's resync packet
	// (a detected drop or a restarted receiver).
	GenBumps, ResyncBumps int64
	// Holds counts frames the adaptive flush controller kept pending at a
	// flush point that would otherwise have emitted them.
	Holds int64
}

// Add accumulates o into s — for harnesses aggregating the per-member
// batching counters of a whole group.
func (s *BatcherStats) Add(o BatcherStats) {
	s.SubPackets += o.SubPackets
	s.Frames += o.Frames
	s.Flushes += o.Flushes
	s.SizeFlushes += o.SizeFlushes
	s.EntryEndFlushes += o.EntryEndFlushes
	s.BarrierFlushes += o.BarrierFlushes
	s.DeltaSubs += o.DeltaSubs
	s.PrefixSubs += o.PrefixSubs
	s.FrameBytes += o.FrameBytes
	s.XFrames += o.XFrames
	s.XFirstFull += o.XFirstFull
	s.XFirstDelta += o.XFirstDelta
	s.GenBumps += o.GenBumps
	s.ResyncBumps += o.ResyncBumps
	s.Holds += o.Holds
}

// batchFrame is one pending coalesced frame: a cast frame fans out to
// the whole group at flush time, a peer frame goes to one destination.
type batchFrame struct {
	cast bool
	to   event.Addr
	subs int
	buf  []byte
	// base is the previous sub's parsed header — the delta base for the
	// next append. Tail-only append makes this well defined: only the
	// newest frame ever grows, so one base per frame is the whole state.
	base subMeta
	// st is the destination chain's state (set when cross-frame or
	// adaptive flush is on) and born the frame's creation time (adaptive
	// flush only) — cached here so flush decisions skip the map.
	st   *peerState
	born int64
}

// Batcher coalesces outgoing wire images into per-destination frames.
// It is single-goroutine, like the member that owns it, and recycles
// its frame buffers so the steady-state hot path allocates nothing
// (the sink consumes frame data during the call, per the Network
// contract). Flush triggers: (a) the size threshold — a frame that
// would outgrow maxBytes flushes everything first; (b) the owner's
// end-of-sweep — core.Member flushes when its outermost entry point
// returns; (c) an explicit Flush at a scheduler barrier — the cluster
// harness flushes each member at the end of its drain phase.
type Batcher struct {
	sink      BatchSink
	from      event.Addr
	maxBytes  int
	immediate bool
	// delta selects the delta-compressed frame format (magic
	// DeltaFrameMagic): compressed wire images are encoded against their
	// in-frame predecessor, everything else rides as full subs. nPrefix
	// is the epoch prefix length the sub parser expects (see delta.go).
	delta   bool
	nPrefix int
	// xframe selects the cross-frame format (magic XFrameMagic, implies
	// delta): frames carry generation-tagged headers and chain their
	// delta state across frame boundaries per destination (xframe.go).
	xframe bool
	// peers holds the per-chain generation/shadow/cadence state, keyed by
	// destination (one shared entry for the cast chain).
	peers map[xKey]*peerState
	// adaptive enables the per-destination flush controller: now is the
	// owner's clock and aCfg its tuning (xframe.go). holdObs, when set,
	// observes each emitted frame's queue residency (emit time minus
	// creation time, ns) — the hold-duration histogram feed.
	adaptive bool
	now      func() int64
	aCfg     AdaptiveFlushConfig
	holdObs  func(int64)

	frames []batchFrame
	free   [][]byte
	// prev holds a copy of the last wire appended to the newest frame —
	// the base for shared-prefix encoding. One buffer suffices because
	// only the newest frame is ever appendable; tail() empties it when a
	// fresh frame starts.
	prev  []byte
	stats BatcherStats
}

// NewBatcher builds a batcher for the member at from, flushing frames
// into sink. maxBytes <= 0 selects DefaultFrameBytes.
func NewBatcher(sink BatchSink, from event.Addr, maxBytes int) *Batcher {
	if maxBytes <= 0 {
		maxBytes = DefaultFrameBytes
	}
	return &Batcher{sink: sink, from: from, maxBytes: maxBytes}
}

// SetImmediate switches coalescing off: every wire is flushed as its
// own single-sub frame during the call that appended it. This is the
// ablation knob for measuring what batching buys; the wire format is
// unchanged, so receivers cannot tell the difference.
func (b *Batcher) SetImmediate(on bool) {
	b.Flush()
	b.immediate = on
}

// EnableDelta switches the batcher to the delta-compressed frame format
// (see delta.go): sub-packet headers are elided or delta-encoded against
// the previous sub in the frame. prefixUvarints is the number of epoch
// uvarints prefixed to every wire (EpochPrefixUvarints for core.Member
// traffic, 0 for bare wires); receivers must walk frames with a
// FrameWalker built with the same value. Pending frames are flushed
// first, so a frame is never half one format.
func (b *Batcher) EnableDelta(prefixUvarints int) {
	if prefixUvarints < 0 || prefixUvarints > maxPrefix {
		panic("transport: prefixUvarints out of range")
	}
	b.Flush()
	b.delta = true
	b.nPrefix = prefixUvarints
}

// DisableDelta restores the classic frame format — the ablation knob for
// measuring what delta compression buys. Cross-frame encoding rides on
// delta, so it is disabled too.
func (b *Batcher) DisableDelta() {
	b.Flush()
	b.delta = false
	b.xframe = false
}

// DisableCrossFrame drops back from the cross-frame format to plain
// intra-frame delta — the ablation knob that isolates what chaining the
// delta state across frame boundaries buys on top of 0xB8. Pending
// frames are flushed first; per-chain generation state is kept, so
// re-enabling resumes where the chains left off.
func (b *Batcher) DisableCrossFrame() {
	b.Flush()
	b.xframe = false
}

// DeltaEnabled reports whether the delta frame format is selected.
func (b *Batcher) DeltaEnabled() bool { return b.delta }

// Stats returns a snapshot of the batching counters.
func (b *Batcher) Stats() BatcherStats { return b.stats }

// Pending reports the number of frames awaiting a flush.
func (b *Batcher) Pending() int { return len(b.frames) }

// Send appends a point-to-point wire image headed to peer to. The data
// is copied during the call; the caller may reuse its buffer.
func (b *Batcher) Send(to event.Addr, wire []byte) { b.append(false, to, wire) }

// Cast appends a multicast wire image. The data is copied during the
// call.
func (b *Batcher) Cast(wire []byte) { b.append(true, 0, wire) }

func (b *Batcher) append(cast bool, to event.Addr, wire []byte) {
	b.stats.SubPackets++
	need := 1 + binary.MaxVarintLen32 + len(wire)
	f := b.tail(cast, to, need)
	if b.adaptive && f.st != nil {
		// Feed the chain's append-cadence estimate: a fast EWMA of the
		// inter-append gap, the signal the flush controller holds on.
		now := b.now()
		if f.st.lastAppend >= 0 {
			gap := now - f.st.lastAppend
			if f.st.gapEWMA < 0 {
				f.st.gapEWMA = gap
			} else {
				f.st.gapEWMA = (3*f.st.gapEWMA + gap) / 4
			}
		}
		f.st.lastAppend = now
	}
	if b.delta {
		b.appendDelta(f, wire)
	} else {
		f.buf = binary.AppendUvarint(f.buf, uint64(len(wire)))
		f.buf = append(f.buf, wire...)
	}
	f.subs++
	if b.immediate || len(f.buf) >= b.maxBytes {
		b.FlushFor(FlushSize)
	}
}

// appendDelta appends wire to a delta-format frame: field-delta-encoded
// when both it and the frame's previous sub parse as compressed images
// and the seqno delta fits; otherwise a shared-prefix sub when enough
// leading bytes match the previous wire (acks and gossip repeat their
// headers even though the coder has no model of their fields); a
// flagged full sub as the last resort. Either way the wire becomes the
// next delta base (an unparseable wire clears the field base, so a
// following delta sub can never refer past an opaque one) and the next
// prefix base.
func (b *Batcher) appendDelta(f *batchFrame, wire []byte) {
	// In a cross-frame frame the first sub may encode against the
	// previous frame's last sub (the seeded base/prev): count how often
	// that pays off versus riding full.
	first := b.xframe && f.subs == 0
	cur := parseSub(wire, b.nPrefix)
	if cur.ok && f.base.ok {
		if buf, ok := appendDeltaSub(f.buf, wire, cur, f.base, b.nPrefix, b.prev); ok {
			f.buf = buf
			f.base = cur
			b.stats.DeltaSubs++
			if first {
				b.stats.XFirstDelta++
			}
			b.prev = append(b.prev[:0], wire...)
			return
		}
	}
	if n := commonPrefixLen(b.prev, wire); n >= minPrefixLen {
		s := commonSuffixLen(wire[n:], b.prev[n:])
		if s < minSuffixLen {
			s = 0
		}
		if s > 0 {
			f.buf = append(f.buf, subPrefixSuffix)
			f.buf = binary.AppendUvarint(f.buf, uint64(n))
			f.buf = binary.AppendUvarint(f.buf, uint64(s))
			f.buf = binary.AppendUvarint(f.buf, uint64(len(wire)-n-s))
			f.buf = append(f.buf, wire[n:len(wire)-s]...)
		} else {
			f.buf = append(f.buf, subPrefix)
			f.buf = binary.AppendUvarint(f.buf, uint64(n))
			f.buf = binary.AppendUvarint(f.buf, uint64(len(wire)-n))
			f.buf = append(f.buf, wire[n:]...)
		}
		f.base = cur
		b.stats.PrefixSubs++
		if first {
			b.stats.XFirstDelta++
		}
		b.prev = append(b.prev[:0], wire...)
		return
	}
	f.buf = append(f.buf, subFull)
	f.buf = binary.AppendUvarint(f.buf, uint64(len(wire)))
	f.buf = append(f.buf, wire...)
	f.base = cur
	if first {
		b.stats.XFirstFull++
	}
	b.prev = append(b.prev[:0], wire...)
}

// tail returns the frame to append into: the newest frame when it has
// the same destination and room, a fresh frame at the end of the queue
// otherwise. Only the newest frame is ever appendable — that is what
// makes emission order equal append order (see the file comment).
func (b *Batcher) tail(cast bool, to event.Addr, need int) *batchFrame {
	if n := len(b.frames); n > 0 {
		f := &b.frames[n-1]
		if f.cast == cast && (cast || f.to == to) && len(f.buf)+need <= b.maxBytes {
			return f
		}
	}
	// The current tail stops being appendable: bank its trailing state as
	// the chain's cross-frame shadow before b.prev is repurposed.
	b.closeTail()
	var buf []byte
	if n := len(b.free); n > 0 {
		buf = b.free[n-1]
		b.free = b.free[:n-1]
	}
	var st *peerState
	if b.xframe || b.adaptive {
		st = b.peer(cast, to)
	}
	b.prev = b.prev[:0] // a fresh frame has no in-frame predecessor...
	var base subMeta
	if b.xframe {
		st.frameSeq++
		flag := byte(0)
		if cast {
			flag = xflagCast
		}
		buf = append(buf[:0], XFrameMagic, flag)
		buf = binary.AppendUvarint(buf, st.gen)
		buf = binary.AppendUvarint(buf, st.frameSeq)
		if st.hasShadow && st.sinceFull < xAnchorEvery {
			// ...unless the chain's shadow carries one across the frame
			// boundary: the receiver's mirror holds the same bytes. Every
			// xAnchorEvery-th frame forgoes the shadow and rides a full
			// first sub — a self-contained anchor the receiver can adopt
			// statelessly, which bounds how many in-flight frames one
			// loss can render undecodable before the resync round trip
			// lands (see xframe.go).
			base = st.shadowMeta
			b.prev = append(b.prev[:0], st.shadow...)
			st.sinceFull++
		} else {
			st.sinceFull = 0
		}
		b.stats.XFrames++
	} else {
		magic := byte(FrameMagic)
		if b.delta {
			magic = DeltaFrameMagic
		}
		buf = append(buf[:0], magic)
	}
	var born int64
	if b.adaptive {
		born = b.now()
	}
	b.frames = append(b.frames, batchFrame{cast: cast, to: to, buf: buf, base: base, st: st, born: born})
	return &b.frames[len(b.frames)-1]
}

// Flush hands every pending frame to the sink, in creation order, and
// recycles the buffers. Safe to call with nothing pending. Explicit
// flushes never hold: shutdown and mode switches need the wire empty.
func (b *Batcher) Flush() int { return b.FlushFor(FlushExplicit) }

// FlushFor is Flush with the trigger recorded in the per-cause stats;
// the member and scheduler flush points call it so the counters say
// where coalescing windows close. It returns the number of frames
// emitted: with the adaptive controller on, an entry-end or barrier
// flush may hold back a suffix of the queue (frames still small, young,
// and headed to chains appending at short gaps) — emitting only a
// prefix preserves the append-order emission guarantee, and held frames
// age out at the next flush point (the owner's sweep tick bounds that).
func (b *Batcher) FlushFor(cause FlushCause) int {
	if len(b.frames) == 0 {
		return 0
	}
	b.closeTail()
	cut := len(b.frames)
	if b.adaptive && (cause == FlushEntryEnd || cause == FlushBarrier) {
		now := b.now()
		for cut > 0 && b.holdable(&b.frames[cut-1], now) {
			cut--
		}
		b.stats.Holds += int64(len(b.frames) - cut)
	}
	if cut == 0 {
		return 0
	}
	var emitT int64
	if b.adaptive && b.holdObs != nil {
		emitT = b.now()
	}
	for i := 0; i < cut; i++ {
		f := &b.frames[i]
		if b.adaptive && b.holdObs != nil {
			// Queue residency: how long the adaptive controller let this
			// frame coalesce before it reached the wire.
			b.holdObs(emitT - f.born)
		}
		if f.cast {
			b.sink.Cast(b.from, f.buf)
		} else {
			b.sink.Send(b.from, f.to, f.buf)
		}
		b.stats.Frames++
		b.stats.FrameBytes += int64(len(f.buf))
		b.free = append(b.free, f.buf)
	}
	held := copy(b.frames, b.frames[cut:])
	for i := held; i < len(b.frames); i++ {
		b.frames[i] = batchFrame{}
	}
	b.frames = b.frames[:held]
	b.stats.Flushes++
	switch cause {
	case FlushSize:
		b.stats.SizeFlushes++
	case FlushEntryEnd:
		b.stats.EntryEndFlushes++
	case FlushBarrier:
		b.stats.BarrierFlushes++
	}
	return cut
}
