package transport

import (
	"bytes"
	"math/rand"
	"testing"

	"ensemble/internal/event"
)

// Test-local header types; the real layer codecs are exercised by the
// integration suites in internal/core and internal/opt.
type tHdrA struct{ X, Y int64 }

func (tHdrA) Layer() string       { return "test-a" }
func (h tHdrA) HdrString() string { return "test-a" }

type tHdrB struct{ S int64 }

func (tHdrB) Layer() string       { return "test-b" }
func (h tHdrB) HdrString() string { return "test-b" }

func init() {
	RegisterCodec(HeaderCodec{
		Layer: "test-a", ID: 200,
		Encode: func(h event.Header, w *Writer) {
			a := h.(tHdrA)
			w.Varint(a.X)
			w.Varint(a.Y)
		},
		Decode: func(r *Reader) (event.Header, error) {
			return tHdrA{X: r.Varint(), Y: r.Varint()}, nil
		},
	})
	RegisterCodec(HeaderCodec{
		Layer: "test-b", ID: 201,
		Encode: func(h event.Header, w *Writer) { w.Varint(h.(tHdrB).S) },
		Decode: func(r *Reader) (event.Header, error) { return tHdrB{S: r.Varint()}, nil },
	})
}

func TestMarshalUnmarshalRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		ev := event.Alloc()
		ev.Dir = event.Dn
		ev.Type = event.ECast
		if rng.Intn(2) == 0 {
			ev.Type = event.ESend
		}
		ev.ApplMsg = rng.Intn(2) == 0
		ev.Msg.Payload = make([]byte, rng.Intn(64))
		rng.Read(ev.Msg.Payload)
		nh := rng.Intn(6)
		for j := 0; j < nh; j++ {
			if rng.Intn(2) == 0 {
				ev.Msg.Push(tHdrA{X: rng.Int63n(1000) - 500, Y: rng.Int63()})
			} else {
				ev.Msg.Push(tHdrB{S: rng.Int63n(9999)})
			}
		}
		sender := rng.Intn(8)

		var w Writer
		if err := Marshal(ev, sender, &w); err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(w.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if got.Dir != event.Up {
			t.Fatal("unmarshaled event must travel up")
		}
		if got.Type != ev.Type || got.Peer != sender || got.ApplMsg != ev.ApplMsg {
			t.Fatalf("fields: got %+v", got)
		}
		if !bytes.Equal(got.Msg.Payload, ev.Msg.Payload) {
			t.Fatal("payload mismatch")
		}
		if len(got.Msg.Headers) != len(ev.Msg.Headers) {
			t.Fatalf("header count %d != %d", len(got.Msg.Headers), len(ev.Msg.Headers))
		}
		for k := range ev.Msg.Headers {
			if got.Msg.Headers[k] != ev.Msg.Headers[k] {
				t.Fatalf("header %d: %v != %v", k, got.Msg.Headers[k], ev.Msg.Headers[k])
			}
		}
		event.Free(ev)
		event.Free(got)
	}
}

// TestUnmarshalHeaderOrder pins the pop order: the bottom layer (pushed
// last) must pop first on the receive side.
func TestUnmarshalHeaderOrder(t *testing.T) {
	ev := event.Alloc()
	ev.Type = event.ECast
	ev.Msg.Push(tHdrA{X: 1}) // top layer pushes first
	ev.Msg.Push(tHdrB{S: 2}) // bottom layer pushes last
	var w Writer
	if err := Marshal(ev, 0, &w); err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if h := got.Msg.Pop(); h != (tHdrB{S: 2}) {
		t.Fatalf("first pop = %v, want the bottom header", h)
	}
	if h := got.Msg.Pop(); h != (tHdrA{X: 1}) {
		t.Fatalf("second pop = %v, want the top header", h)
	}
	event.Free(ev)
	event.Free(got)
}

// TestUnmarshalCorruptInputs: random corruption must yield errors, never
// panics, and never events with implausible shapes.
func TestUnmarshalCorruptInputs(t *testing.T) {
	ev := event.Alloc()
	ev.Type = event.ECast
	ev.Msg.Push(tHdrA{X: 5, Y: 6})
	ev.Msg.Payload = []byte("payload")
	var w Writer
	if err := Marshal(ev, 1, &w); err != nil {
		t.Fatal(err)
	}
	wire := w.Bytes()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		corrupt := append([]byte(nil), wire...)
		switch rng.Intn(3) {
		case 0: // flip a byte
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		case 1: // truncate
			corrupt = corrupt[:rng.Intn(len(corrupt))]
		case 2: // random garbage
			corrupt = make([]byte, rng.Intn(40))
			rng.Read(corrupt)
		}
		got, err := Unmarshal(corrupt)
		if err == nil {
			event.Free(got)
		}
	}
}

func TestMarshalUnknownLayerFails(t *testing.T) {
	ev := event.Alloc()
	ev.Type = event.ECast
	ev.Msg.Push(event.NoHdr{L: "never-registered"})
	var w Writer
	if err := Marshal(ev, 0, &w); err == nil {
		t.Fatal("marshal of unregistered layer header succeeded")
	}
	event.Free(ev)
}

func TestDuplicateCodecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate codec registration did not panic")
		}
	}()
	RegisterCodec(HeaderCodec{Layer: "test-a", ID: 250})
}
