package deploy

import (
	"bytes"
	"testing"
)

// TestReferenceDeliversCanonical pins the central protocol property the
// equivalence check rests on: with chained admission, the 10-layer
// stack's sequencer is forced to the canonical global order, so every
// member's delivery log IS the canonical log.
func TestReferenceDeliversCanonical(t *testing.T) {
	w := Workload{Members: 4, Rounds: 5, Size: 96, Seed: 7}
	res, err := Reference(w)
	if err != nil {
		t.Fatal(err)
	}
	want := w.CanonicalLog()
	for r, log := range res.Logs {
		if len(log) != len(want) {
			t.Fatalf("member %d delivered %d, want %d", r, len(log), len(want))
		}
		for i := range want {
			if log[i] != want[i] {
				t.Fatalf("member %d log[%d] = %+v, want %+v", r, i, log[i], want[i])
			}
		}
	}
	if len(res.Flight) == 0 {
		t.Fatal("reference run recorded no flight")
	}
	if len(res.Metrics) == 0 {
		t.Fatal("reference run snapshot is empty")
	}
}

// TestReferenceDeterministic: same workload, same flight bytes — the
// property that lets a reference dump be archived and compared later.
func TestReferenceDeterministic(t *testing.T) {
	w := Workload{Members: 3, Rounds: 4, Size: 48, Seed: 21}
	a, err := Reference(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reference(w)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Flight, b.Flight) {
		t.Fatal("reference flight dumps differ across identical runs")
	}
	if _, _, _, _, ok := CompareLogs(a.Logs, b.Logs); !ok {
		t.Fatal("reference logs differ across identical runs")
	}
}
