package deploy

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ensemble/internal/event"
)

func TestParseHostsWellFormed(t *testing.T) {
	in := `# perfect-links style hosts file
1 127.0.0.1 9001

3 localhost 9003
2 127.0.0.1 9002  # trailing comment not allowed -> see garbage test
`
	// The comment on line 5 makes it 5 fields; strip it for the happy path.
	in = strings.Replace(in, "  # trailing comment not allowed -> see garbage test", "", 1)
	hosts, err := ParseHosts(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 3 {
		t.Fatalf("parsed %d hosts, want 3", len(hosts))
	}
	// Sorted by id regardless of file order.
	want := []Host{{1, "127.0.0.1:9001"}, {2, "127.0.0.1:9002"}, {3, "localhost:9003"}}
	for i := range want {
		if hosts[i] != want[i] {
			t.Fatalf("hosts[%d] = %+v, want %+v", i, hosts[i], want[i])
		}
	}
}

func TestParseHostsDuplicateID(t *testing.T) {
	_, err := ParseHosts(strings.NewReader("1 127.0.0.1 9001\n2 127.0.0.1 9002\n1 127.0.0.1 9003\n"))
	if err == nil {
		t.Fatal("duplicate id must be rejected")
	}
	// The error must name both occurrences by line for diagnosis.
	if msg := err.Error(); !strings.Contains(msg, "line 3") || !strings.Contains(msg, "line 1") {
		t.Fatalf("duplicate-id error lacks line numbers: %v", err)
	}
}

func TestParseHostsTrailingGarbage(t *testing.T) {
	for _, bad := range []string{
		"1 127.0.0.1 9001 extra\n",          // 4 fields
		"1 127.0.0.1\n",                     // 2 fields
		"one 127.0.0.1 9001\n",              // non-numeric id
		"1 127.0.0.1 port\n",                // non-numeric port
		"0 127.0.0.1 9001\n",                // id < 1
		"1 127.0.0.1 0\n",                   // port out of range
		"1 127.0.0.1 70000\n",               // port out of range
		"1 127.0.0.1 9001\n3 127.0.0.1 9003\n", // non-contiguous ids
	} {
		if _, err := ParseHosts(strings.NewReader(bad)); err == nil {
			t.Fatalf("malformed hosts %q accepted", bad)
		}
	}
}

func TestParseHostsEmpty(t *testing.T) {
	if _, err := ParseHosts(strings.NewReader("# only comments\n\n")); err == nil {
		t.Fatal("empty hosts file must be rejected")
	}
}

func TestSelfAddrMissingSelf(t *testing.T) {
	hosts := []Host{{1, "127.0.0.1:9001"}, {2, "127.0.0.1:9002"}}
	if _, err := SelfAddr(hosts, 3); err == nil {
		t.Fatal("id absent from the hosts file must be rejected")
	}
	addr, err := SelfAddr(hosts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:9002" {
		t.Fatalf("self addr = %q", addr)
	}
}

// TestNodeUnresolvableHost: a syntactically valid hosts file whose
// address cannot resolve must fail node startup, not hang. The bracket
// form is malformed as a literal, so no resolver traffic happens and
// the test stays hermetic.
func TestNodeUnresolvableHost(t *testing.T) {
	hosts := []Host{{1, "[::bad:1"}, {2, "127.0.0.1:9002"}}
	_, err := RunNode(NodeConfig{ID: 1, Hosts: hosts, W: Workload{Rounds: 1, Size: 16}}, nil, nil)
	if err == nil {
		t.Fatal("unresolvable self address must fail node startup")
	}
}

func TestLoadHostsAndFormatRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hosts.txt")
	hosts := []Host{{1, "127.0.0.1:9001"}, {2, "127.0.0.1:9002"}}
	text, err := FormatHosts(hosts)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHosts(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hosts {
		if got[i] != hosts[i] {
			t.Fatalf("roundtrip hosts[%d] = %+v, want %+v", i, got[i], hosts[i])
		}
	}
	if _, err := LoadHosts(filepath.Join(dir, "absent.txt")); err == nil {
		t.Fatal("missing hosts file must error")
	}
}

func TestPeerMap(t *testing.T) {
	hosts := []Host{{1, "127.0.0.1:9001"}, {2, "127.0.0.1:9002"}}
	pm := PeerMap(hosts)
	if len(pm) != 2 || pm[event.Addr(1)] != "127.0.0.1:9001" || pm[event.Addr(2)] != "127.0.0.1:9002" {
		t.Fatalf("peer map %+v", pm)
	}
}
