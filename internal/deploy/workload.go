package deploy

import (
	"encoding/binary"
	"fmt"
)

// The equivalence workload. Every member casts Rounds messages through
// the 10-layer MACH stack, but admission is chained: member r submits
// its round-i cast only after it has delivered every message that
// precedes (i, r) in the canonical order (0,0), (0,1) … (0,N-1),
// (1,0), … — at most one cast is unordered anywhere in the system at a
// time. The chain is what makes cross-substrate equivalence a sharp
// assertion rather than a statistical one: the 10-layer stack's
// sequencer assigns global order by arrival, so with one cast in
// flight the global sequence is forced to the canonical order by the
// protocol itself, on the simulated network and on real sockets alike.
// Both substrates must then deliver the identical per-member sequence,
// and any deviation — a reordering, a loss the NAK layer failed to
// repair, a misattributed sender — surfaces as a first divergence at a
// specific message. (The chain costs concurrency, not coverage: every
// layer still processes every message, and batching/delta framing
// still engage on the order announcements and acks riding each burst.)

// MsgID identifies one workload cast: the origin's rank and the
// origin-local round index.
type MsgID struct {
	Origin int `json:"origin"`
	Index  int `json:"index"`
}

// Workload are the parameters both substrates share.
type Workload struct {
	Members int
	Rounds  int
	// Size is the cast payload size in bytes (minimum workloadMinSize:
	// the id header; the rest is deterministic filler).
	Size int
	// Seed drives the netsim reference's link model. The UDP run has
	// real timing instead; equivalence must hold for every seed, which
	// is exactly the claim being checked.
	Seed int64
}

// workloadMinSize is the encoded MsgID header: two uvarints, each at
// most 10 bytes.
const workloadMinSize = 4

// Payload encodes id into a fresh size-padded workload payload.
func (w Workload) Payload(id MsgID) []byte {
	size := w.Size
	buf := make([]byte, 0, max(size, workloadMinSize))
	buf = binary.AppendUvarint(buf, uint64(id.Origin))
	buf = binary.AppendUvarint(buf, uint64(id.Index))
	for len(buf) < size {
		// Deterministic filler keyed by the id, so padding corruption is
		// not silent.
		buf = append(buf, byte(id.Origin*31+id.Index+len(buf)))
	}
	return buf
}

// DecodePayload recovers the MsgID from a workload payload.
func DecodePayload(p []byte) (MsgID, error) {
	origin, n := binary.Uvarint(p)
	if n <= 0 {
		return MsgID{}, fmt.Errorf("deploy: truncated workload payload")
	}
	index, k := binary.Uvarint(p[n:])
	if k <= 0 {
		return MsgID{}, fmt.Errorf("deploy: truncated workload payload")
	}
	return MsgID{Origin: int(origin), Index: int(index)}, nil
}


// Total is the number of casts the workload admits.
func (w Workload) Total() int { return w.Members * w.Rounds }

// CanonicalAt is the message the canonical order admits at position
// pos: round pos/N from member pos%N.
func (w Workload) CanonicalAt(pos int) MsgID {
	return MsgID{Origin: pos % w.Members, Index: pos / w.Members}
}

// CanonicalLog is the full canonical delivery sequence — what every
// member of a correct run delivers, on either substrate.
func (w Workload) CanonicalLog() []MsgID {
	log := make([]MsgID, w.Total())
	for i := range log {
		log[i] = w.CanonicalAt(i)
	}
	return log
}

// chainDriver is one member's view of the chain: the delivery log so
// far, and the decision of when it is this member's turn to cast. All
// methods run on the member's goroutine (the delivery handler); the
// log is read by others only after the run has quiesced.
type chainDriver struct {
	w    Workload
	rank int
	log  []MsgID
	// casts counts own submissions, so a turn is taken exactly once
	// even if the turn check runs twice at the same position.
	casts int
}

// deliver records one delivery.
func (c *chainDriver) deliver(id MsgID) { c.log = append(c.log, id) }

// next returns the message this member must cast now, if the chain has
// reached one of its turns: position len(log) is member rank's slot and
// that slot's cast has not been submitted yet.
func (c *chainDriver) next() (MsgID, bool) {
	pos := len(c.log)
	if pos >= c.w.Total() || pos%c.w.Members != c.rank {
		return MsgID{}, false
	}
	if id := c.w.CanonicalAt(pos); c.casts == id.Index {
		c.casts++
		return id, true
	}
	return MsgID{}, false
}

// done reports whether this member has delivered the whole workload.
func (c *chainDriver) done() bool { return len(c.log) >= c.w.Total() }

// CompareLogs locates the first difference between two runs' per-member
// delivery logs: the lowest (position, rank) at which they disagree.
// ok=false means a divergence was found at log position pos of member
// rank; a and b carry the differing entries (nil-signaled via ok fields
// is avoided — a missing entry reports MsgID{-1,-1}).
func CompareLogs(x, y [][]MsgID) (rank, pos int, a, b MsgID, ok bool) {
	missing := MsgID{Origin: -1, Index: -1}
	nr := len(x)
	if len(y) > nr {
		nr = len(y)
	}
	first := struct {
		found     bool
		rank, pos int
		a, b      MsgID
	}{}
	note := func(r, p int, av, bv MsgID) {
		if !first.found || p < first.pos || (p == first.pos && r < first.rank) {
			first.found, first.rank, first.pos, first.a, first.b = true, r, p, av, bv
		}
	}
	for r := 0; r < nr; r++ {
		var lx, ly []MsgID
		if r < len(x) {
			lx = x[r]
		}
		if r < len(y) {
			ly = y[r]
		}
		n := len(lx)
		if len(ly) > n {
			n = len(ly)
		}
		for p := 0; p < n; p++ {
			av, bv := missing, missing
			if p < len(lx) {
				av = lx[p]
			}
			if p < len(ly) {
				bv = ly[p]
			}
			if av != bv {
				note(r, p, av, bv)
				break // only the first divergence per member matters
			}
		}
	}
	if first.found {
		return first.rank, first.pos, first.a, first.b, false
	}
	return 0, 0, MsgID{}, MsgID{}, true
}
