package deploy

import (
	"fmt"

	"ensemble/internal/core"
	"ensemble/internal/layers"
	"ensemble/internal/netsim"
	"ensemble/internal/obs"
	"ensemble/internal/stack"
)

// The in-process reference: the same chained workload, the same
// 10-layer MACH stack, composed over the deterministic simulated
// network instead of one UDP socket per process. Its delivery logs and
// flight dump are what the multi-process run is checked against.

// ReferenceResult is one netsim reference run.
type ReferenceResult struct {
	// Logs is each member's delivery sequence, indexed by rank.
	Logs [][]MsgID
	// Flight is the run's flight-dump image (obs.DumpBytes format),
	// comparable with a merged multi-process dump via obs.DiffDumps.
	Flight []byte
	// Metrics is the run's unified registry snapshot.
	Metrics obs.Snapshot
}

// referenceRing sizes the reference recorder's per-member rings; the
// multi-process node uses the same so ring wraparound points align.
const referenceRing = 1 << 12

// Reference runs the chained workload on the in-process netsim cluster
// (one goroutine per member under the deterministic barrier scheduler)
// and returns its delivery logs, flight, and metrics. The run is a
// deterministic function of w — same parameters, same logs and same
// flight bytes, which is what makes it a reference.
func Reference(w Workload) (*ReferenceResult, error) {
	if w.Members < 2 || w.Rounds < 1 {
		return nil, fmt.Errorf("deploy: reference needs >= 2 members and >= 1 round, got %d/%d", w.Members, w.Rounds)
	}
	drivers := make([]*chainDriver, w.Members)
	var g *core.ClusterGroup
	build := func(rank int) core.Handlers {
		d := &chainDriver{w: w, rank: rank}
		drivers[rank] = d
		return core.Handlers{
			OnCast: func(origin int, payload []byte) {
				id, err := DecodePayload(payload)
				if err != nil {
					id = MsgID{Origin: -1, Index: -1} // logged, caught by the comparison
				}
				d.deliver(id)
				if next, due := d.next(); due {
					g.Members[rank].Cast(w.Payload(next))
				}
			},
		}
	}
	g, err := core.NewOptimizedClusterGroup(w.Members, netsim.Ethernet100(), w.Seed, layers.Stack10(), stack.Func, build)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(w.Members, referenceRing)
	g.EnableObs(reg, rec)

	// Kick the chain: position 0 is member 0's turn.
	g.Do(0, 0, func() {
		if next, due := drivers[0].next(); due {
			g.Members[0].Cast(w.Payload(next))
		}
	})
	// Advance in slices until every member has delivered the whole
	// workload; the chain makes progress a protocol property, so a
	// stall inside the virtual-time bound is a real bug, not jitter.
	const slice = int64(50e6) // 50ms of virtual time
	deadline := int64(w.Total())*int64(1e9) + int64(10e9)
	for g.Cluster.Sim().Now() < deadline {
		done := true
		for _, d := range drivers {
			if !d.done() {
				done = false
				break
			}
		}
		if done {
			break
		}
		g.Run(slice)
	}
	res := &ReferenceResult{
		Logs:    make([][]MsgID, w.Members),
		Flight:  rec.DumpBytes(),
		Metrics: reg.Snapshot(),
	}
	for r, d := range drivers {
		if !d.done() {
			return res, fmt.Errorf("deploy: reference stalled — member %d delivered %d of %d within the virtual-time bound",
				r, len(d.log), w.Total())
		}
		res.Logs[r] = d.log
	}
	return res, nil
}
