package deploy

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"ensemble/internal/core"
	"ensemble/internal/event"
	"ensemble/internal/layers"
	"ensemble/internal/netsim"
	"ensemble/internal/obs"
	"ensemble/internal/stack"
)

// The ensemble-node runtime: one ClusterGroup member per OS process
// over real UDP sockets, bootstrapped from a hosts file and a member
// id. The node speaks a four-word line protocol with whoever launched
// it — READY up once the socket is bound and the stack built, GO down
// to admit traffic, DONE up when the workload is delivered, EXIT down
// to shut down — so a launcher can hold all processes at the barrier
// until every socket exists (no artificial startup loss) and keep them
// alive until every peer has finished (the last messages' NAK repairs
// need live senders).

// NodeConfig configures one node process.
type NodeConfig struct {
	// ID is this member's id (1-based, as in the hosts file).
	ID    int
	Hosts []Host
	W     Workload
	// Ring overrides the flight ring size (default referenceRing, so
	// node and reference wraparound points align).
	Ring int
	// Timeout bounds the workload phase (GO to delivery-complete).
	Timeout time.Duration
	// Loss, when > 0, drops that fraction of incoming data frames before
	// decode (netsim.UDPNet.SetRecvLoss) — the adversarial half of the
	// equivalence gate: the delivered sequence must still match the
	// loss-free reference. LossSeed seeds the drop pattern; each node
	// offsets it by its ID so the processes do not drop in lockstep.
	Loss     float64
	LossSeed int64
	// BumpAfter, when > 0, bumps every cross-frame generation after that
	// many local deliveries — a forced mid-run resync of all the node's
	// chains, exercising the 0xB9 generation machinery under real load.
	BumpAfter int
	// Telemetry, when non-empty, is the host:port ("127.0.0.1:0" for an
	// ephemeral port) the node's live telemetry server binds. The bound
	// address is announced as "TELEM <addr>" on the status stream before
	// READY, so a launcher can poll the registry mid-run.
	Telemetry string
}

// NodeResult is what one node run produces.
type NodeResult struct {
	ID int `json:"id"`
	// Rank is the member's rank in the static deployment view (ID-1).
	Rank int `json:"rank"`
	// Log is the member's delivery sequence.
	Log []MsgID `json:"log"`
	// Flight is the member's flight-dump image (all ranks' tracks, only
	// this member's populated — MergeDumps interleaves them).
	Flight []byte `json:"flight"`
	// Metrics is the node's registry snapshot (member, udp, pool).
	Metrics obs.Snapshot `json:"metrics"`
	// UDP is the socket-side accounting.
	UDP netsim.UDPStats `json:"udp"`
}

// RunNode hosts member cfg.ID over UDP per cfg.Hosts, drives the
// chained workload, and returns the run's log, flight, and counters.
// ctrl and status carry the launcher protocol; a nil ctrl runs
// free-standing (GO immediately, exit when done). Even on error the
// result carries whatever flight was recorded — a stalled run's flight
// is exactly what the launcher archives for diagnosis.
func RunNode(cfg NodeConfig, ctrl io.Reader, status io.Writer) (NodeResult, error) {
	w := cfg.W
	w.Members = len(cfg.Hosts)
	res := NodeResult{ID: cfg.ID, Rank: cfg.ID - 1}
	if w.Members < 2 {
		return res, fmt.Errorf("deploy: node needs >= 2 members in the hosts file, got %d", w.Members)
	}
	self, err := SelfAddr(cfg.Hosts, cfg.ID)
	if err != nil {
		return res, err
	}
	rank := cfg.ID - 1
	ring := cfg.Ring
	if ring <= 0 {
		ring = referenceRing
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	u, err := netsim.NewUDPNet(event.Addr(cfg.ID), self, PeerMap(cfg.Hosts))
	if err != nil {
		return res, err
	}
	defer u.Close()
	if cfg.Loss > 0 {
		u.SetRecvLoss(cfg.Loss, cfg.LossSeed+int64(cfg.ID))
	}

	addrs := make([]event.Addr, w.Members)
	for i := range addrs {
		addrs[i] = event.Addr(i + 1)
	}
	v := event.NewView("deploy", 1, addrs, rank)

	driver := &chainDriver{w: w, rank: rank}
	done := make(chan struct{})
	signaled := false // handler-goroutine only; a dup past the last message must not re-close
	bumped := false   // handler-goroutine only, like signaled
	var m *core.Member
	m, err = core.NewOptimizedMember(u, u, v, layers.Stack10(), stack.Func, core.Handlers{
		OnCast: func(origin int, payload []byte) {
			id, derr := DecodePayload(payload)
			if derr != nil {
				id = MsgID{Origin: -1, Index: -1}
			}
			driver.deliver(id)
			if cfg.BumpAfter > 0 && !bumped && len(driver.log) >= cfg.BumpAfter {
				// Forced mid-run generation bump: every chain restarts
				// from a full-header anchor, as after a view install.
				bumped = true
				m.Batcher().BumpGenerations()
			}
			if next, due := driver.next(); due {
				m.Cast(w.Payload(next))
			}
			if driver.done() && !signaled {
				signaled = true
				close(done)
			}
		},
	})
	if err != nil {
		return res, err
	}
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(w.Members, ring)
	m.EnableObs(reg.Scope(fmt.Sprintf("member%d/", rank)), rec.Track(rank))
	u.RegisterMetrics(reg)
	core.RegisterPoolMetrics(reg)
	m.Start()
	runDone := make(chan error, 1)
	go func() { runDone <- u.Run() }()

	// collect snapshots state after the Run goroutine has exited (the
	// channel receive orders the reads after every member callback).
	collect := func() {
		u.Close()
		<-runDone
		res.Log = driver.log
		res.Flight = rec.DumpBytes()
		res.Metrics = reg.Snapshot()
		res.UDP = u.Snapshot()
	}

	// Live telemetry: a loopback HTTP server over the registry. The
	// snapshot closure hops onto the Run goroutine (Func gauges read
	// plain member fields), with a bounded wait so a poll racing
	// shutdown gets the server's cached last snapshot instead of
	// hanging.
	if cfg.Telemetry != "" {
		ts, terr := StartTelemetry(cfg.Telemetry, func() (obs.Snapshot, bool) {
			ch := make(chan obs.Snapshot, 1)
			u.Do(func() { ch <- reg.Snapshot() })
			select {
			case s := <-ch:
				return s, true
			case <-time.After(2 * time.Second):
				return nil, false
			}
		})
		if terr != nil {
			return res, terr
		}
		defer ts.Close()
		if status != nil {
			fmt.Fprintf(status, "TELEM %s\n", ts.Addr())
		}
	}

	// Barrier up: socket bound, member built — tell the launcher and
	// wait for the group-wide GO.
	lines := protoLines(ctrl)
	if status != nil {
		fmt.Fprintln(status, protoReady)
	}
	if ctrl != nil {
		word, err := protoExpect(lines, timeout, protoGo, protoExit)
		if err != nil {
			collect()
			return res, fmt.Errorf("deploy: node %d waiting for %s: %w", cfg.ID, protoGo, err)
		}
		if word == protoExit {
			collect()
			return res, nil
		}
	}

	// Admit traffic: position 0 is member 0's turn; everyone else's
	// first turn is unlocked by deliveries.
	u.Do(func() {
		if next, due := driver.next(); due {
			m.Cast(w.Payload(next))
		}
	})

	select {
	case <-done:
	case err := <-runDone:
		runDone <- err
		collect()
		return res, fmt.Errorf("deploy: node %d socket closed mid-workload", cfg.ID)
	case <-time.After(timeout):
		collect()
		return res, fmt.Errorf("deploy: node %d delivered %d of %d within %v",
			cfg.ID, len(res.Log), w.Total(), timeout)
	}
	if status != nil {
		// The socket-side scorecard rides the status stream right before
		// DONE (protocol waits tolerate the chatter): how much resync and
		// drop traffic this run actually generated, without digging into
		// the JSON artifact.
		s := u.Snapshot()
		fmt.Fprintf(status, "STATS gen_misses=%d stale_gen_frames=%d resyncs=%d injected_drops=%d peer_moves=%d\n",
			s.GenMisses, s.StaleGenFrames, s.Resyncs, s.InjectedDrops, s.PeerMoves)
		fmt.Fprintln(status, protoDone)
	}
	// Stay alive until the launcher has seen DONE from every node: this
	// member's retransmission buffers are what repair a peer's trailing
	// losses. Free-standing (ctrl == nil), there is nobody to wait for.
	if ctrl != nil {
		if _, err := protoExpect(lines, timeout, protoExit); err != nil {
			collect()
			return res, fmt.Errorf("deploy: node %d waiting for %s: %w", cfg.ID, protoExit, err)
		}
	}
	// Graceful shutdown: detach the member on its own goroutine, push
	// the batched tail onto the socket (Sync), then close.
	u.Do(m.Shutdown)
	u.Sync()
	collect()
	return res, nil
}

// The launcher wire protocol. TELEM and STATS are one-way
// announcements on the status stream (node → launcher), not barrier
// words: protocol waits that are not looking for them skip them as
// chatter.
const (
	protoReady = "READY"
	protoGo    = "GO"
	protoDone  = "DONE"
	protoExit  = "EXIT"
	protoTelem = "TELEM"
)

// protoLines pumps ctrl into a line channel so protocol waits can carry
// deadlines; the channel closes on EOF (launcher death).
func protoLines(ctrl io.Reader) <-chan string {
	if ctrl == nil {
		return nil
	}
	ch := make(chan string, 4)
	go func() {
		sc := bufio.NewScanner(ctrl)
		for sc.Scan() {
			ch <- strings.TrimSpace(sc.Text())
		}
		close(ch)
	}()
	return ch
}

// protoExpect waits for one of the expected protocol words.
func protoExpect(lines <-chan string, d time.Duration, want ...string) (string, error) {
	return protoExpectObs(lines, d, nil, want...)
}

// protoExpectObs waits for one of the expected protocol words, handing
// every other line to observe (when non-nil) — how the launcher picks
// TELEM announcements out of the pre-READY chatter.
func protoExpectObs(lines <-chan string, d time.Duration, observe func(string), want ...string) (string, error) {
	deadline := time.After(d)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				return "", fmt.Errorf("control stream closed")
			}
			for _, w := range want {
				if line == w {
					return w, nil
				}
			}
			// Tolerate chatter (a shell echo, a stray blank): only
			// protocol words matter — but let the observer see it.
			if observe != nil {
				observe(line)
			}
		case <-deadline:
			return "", fmt.Errorf("timed out after %v", d)
		}
	}
}
