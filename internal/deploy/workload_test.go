package deploy

import (
	"testing"
)

func TestPayloadRoundTrip(t *testing.T) {
	w := Workload{Members: 4, Rounds: 8, Size: 64}
	for _, id := range []MsgID{{0, 0}, {3, 7}, {2, 200}, {15, 0}} {
		p := w.Payload(id)
		if len(p) != 64 {
			t.Fatalf("payload size %d, want 64", len(p))
		}
		got, err := DecodePayload(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != id {
			t.Fatalf("roundtrip %+v -> %+v", id, got)
		}
	}
	// Tiny size still fits the header.
	p := Workload{Members: 2, Rounds: 1, Size: 0}.Payload(MsgID{1, 0})
	if got, err := DecodePayload(p); err != nil || got != (MsgID{1, 0}) {
		t.Fatalf("tiny payload roundtrip: %+v, %v", got, err)
	}
	if _, err := DecodePayload(nil); err == nil {
		t.Fatal("empty payload must not decode")
	}
}

func TestCanonicalOrder(t *testing.T) {
	w := Workload{Members: 3, Rounds: 2}
	want := []MsgID{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}
	log := w.CanonicalLog()
	if len(log) != w.Total() {
		t.Fatalf("canonical log has %d entries, want %d", len(log), w.Total())
	}
	for i, id := range want {
		if log[i] != id {
			t.Fatalf("canonical[%d] = %+v, want %+v", i, log[i], id)
		}
	}
}

// TestChainDriversSelfConsistent simulates the chain in-process without
// any stack: whenever a driver owes a cast, broadcast it to all drivers
// in canonical order. Every driver must emit exactly its own rounds and
// finish with the canonical log.
func TestChainDriversSelfConsistent(t *testing.T) {
	w := Workload{Members: 4, Rounds: 5}
	drivers := make([]*chainDriver, w.Members)
	for r := range drivers {
		drivers[r] = &chainDriver{w: w, rank: r}
	}
	pending := []MsgID{}
	if id, due := drivers[0].next(); !due {
		t.Fatal("member 0 must own position 0")
	} else {
		pending = append(pending, id)
	}
	for len(pending) > 0 {
		id := pending[0]
		pending = pending[1:]
		for _, d := range drivers {
			d.deliver(id)
			if next, due := d.next(); due {
				pending = append(pending, next)
			}
		}
	}
	want := w.CanonicalLog()
	for r, d := range drivers {
		if !d.done() {
			t.Fatalf("driver %d not done: %d of %d", r, len(d.log), w.Total())
		}
		if d.casts != w.Rounds {
			t.Fatalf("driver %d cast %d times, want %d", r, d.casts, w.Rounds)
		}
		for i := range want {
			if d.log[i] != want[i] {
				t.Fatalf("driver %d log[%d] = %+v, want %+v", r, i, d.log[i], want[i])
			}
		}
	}
}

func TestCompareLogs(t *testing.T) {
	w := Workload{Members: 2, Rounds: 3}
	canon := w.CanonicalLog()
	same := [][]MsgID{canon, canon}
	if _, _, _, _, ok := CompareLogs(same, same); !ok {
		t.Fatal("identical logs must compare equal")
	}

	// A flipped entry: divergence at the exact (rank, pos).
	mut := append([]MsgID(nil), canon...)
	mut[3] = MsgID{Origin: 9, Index: 9}
	rank, pos, a, b, ok := CompareLogs([][]MsgID{canon, mut}, same)
	if ok || rank != 1 || pos != 3 {
		t.Fatalf("divergence at rank=%d pos=%d ok=%v, want rank=1 pos=3", rank, pos, ok)
	}
	if a != (MsgID{9, 9}) || b != canon[3] {
		t.Fatalf("divergence entries a=%+v b=%+v", a, b)
	}

	// A truncated log: missing side reports {-1,-1}.
	short := [][]MsgID{canon[:4], canon}
	_, pos, a, _, ok = CompareLogs(short, same)
	if ok || pos != 4 || a != (MsgID{-1, -1}) {
		t.Fatalf("truncation: pos=%d a=%+v ok=%v", pos, a, ok)
	}

	// Earliest position wins across members.
	mutEarly := append([]MsgID(nil), canon...)
	mutEarly[1] = MsgID{8, 8}
	rank, pos, _, _, ok = CompareLogs([][]MsgID{canon, mut}, [][]MsgID{mutEarly, canon})
	if ok || rank != 0 || pos != 1 {
		t.Fatalf("earliest divergence rank=%d pos=%d, want rank=0 pos=1", rank, pos)
	}
}
