package deploy

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ensemble/internal/obs"
)

// testSnap builds a small snapshot the telemetry tests serve.
func testSnap() obs.Snapshot {
	reg := obs.NewRegistry()
	reg.Counter("member0/casts_delivered").Add(24)
	reg.Counter("udp/resyncs").Add(3)
	h := reg.Histogram("member0/lat/e2e_ns")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	return reg.Snapshot()
}

func TestTelemetryEndpoints(t *testing.T) {
	want := testSnap()
	ts, err := StartTelemetry("127.0.0.1:0", func() (obs.Snapshot, bool) { return want, true })
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	defer ts.Close()

	// /snapshot round-trips the binary frame.
	got, err := FetchSnapshot(ts.Addr())
	if err != nil {
		t.Fatalf("FetchSnapshot: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d metrics, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("metric %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// /metrics serves Prometheus text with sanitized names.
	resp, err := http.Get("http://" + ts.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %s", resp.Status)
	}
	text := string(body)
	for _, line := range []string{
		"ensemble_member0_casts_delivered 24",
		"ensemble_udp_resyncs 3",
		"ensemble_member0_lat_e2e_ns_count 100",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("/metrics missing %q in:\n%s", line, text)
		}
	}
	if strings.ContainsAny(text, "/") {
		t.Errorf("/metrics leaked unsanitized name chars:\n%s", text)
	}

	// /stream yields consecutive length-prefixed frames.
	sresp, err := http.Get("http://" + ts.Addr() + "/stream?ms=10")
	if err != nil {
		t.Fatalf("/stream: %v", err)
	}
	defer sresp.Body.Close()
	for i := 0; i < 3; i++ {
		s, err := readSnapshotFrame(sresp.Body)
		if err != nil {
			t.Fatalf("stream frame %d: %v", i, err)
		}
		if v, ok := s.Get("member0/casts_delivered"); !ok || v != 24 {
			t.Fatalf("stream frame %d: casts_delivered=%d ok=%v", i, v, ok)
		}
	}
}

func TestTelemetryServesCachedAfterSourceDies(t *testing.T) {
	want := testSnap()
	live := true
	ts, err := StartTelemetry("127.0.0.1:0", func() (obs.Snapshot, bool) {
		if live {
			return want, true
		}
		return nil, false
	})
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	defer ts.Close()
	if _, err := FetchSnapshot(ts.Addr()); err != nil {
		t.Fatalf("live fetch: %v", err)
	}
	live = false
	got, err := FetchSnapshot(ts.Addr())
	if err != nil {
		t.Fatalf("cached fetch: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("cached snapshot has %d metrics, want %d", len(got), len(want))
	}
}

func TestTelemetryNoSnapshotIs503(t *testing.T) {
	ts, err := StartTelemetry("127.0.0.1:0", func() (obs.Snapshot, bool) { return nil, false })
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	defer ts.Close()
	resp, err := http.Get("http://" + ts.Addr() + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %s, want 503", resp.Status)
	}
}

// TestInProcessClusterTelemetry runs the in-process cluster with the
// live plane on: every node announces a TELEM address before READY,
// answers a mid-run poll, and its final snapshot agrees with the
// workload and the flight dump it wrote.
func TestInProcessClusterTelemetry(t *testing.T) {
	w := Workload{Members: 3, Rounds: 4, Size: 64, Seed: 17}
	results, errs := inprocClusterCfg(t, w, 30*time.Second, func(cfg *NodeConfig) {
		cfg.Telemetry = "127.0.0.1:0"
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}
	for i, r := range results {
		if int64(len(r.Log)) != int64(w.Total()) {
			t.Fatalf("node %d delivered %d of %d", i+1, len(r.Log), w.Total())
		}
		name := fmt.Sprintf("member%d/casts_delivered", i)
		v, ok := r.Metrics.Get(name)
		if !ok || v != int64(w.Total()) {
			t.Fatalf("node %d final %s=%d ok=%v, want %d", i+1, name, v, ok, w.Total())
		}
	}
}

func TestHealthTableRendersAndToleratesNil(t *testing.T) {
	snaps := []obs.Snapshot{testSnap(), nil}
	table := HealthTable(snaps)
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want header + 2 rows:\n%s", len(lines), table)
	}
	if !strings.Contains(lines[0], "p99(e2e)") {
		t.Errorf("missing header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "24") {
		t.Errorf("row 0 missing delivered count: %q", lines[1])
	}
	if !strings.Contains(lines[2], "-") {
		t.Errorf("nil row should render dashes: %q", lines[2])
	}
}
