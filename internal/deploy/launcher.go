package deploy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ensemble/internal/netsim"
	"ensemble/internal/obs"
)

// The loopback launcher: spawn one ensemble-node process per member,
// hold them at the READY barrier until every socket is bound, run the
// chained workload across real datagrams, and assert that the
// physically distributed run delivered exactly what the in-process
// netsim reference delivers. Artifacts — per-node delivery logs, flight
// dumps, the merged flight, the reference flight — land in a directory
// that survives failed runs, so a divergence comes with the evidence
// needed to localize it (flight-diff on any pair of dumps).

// LaunchConfig configures a multi-process run.
type LaunchConfig struct {
	W Workload
	// NodeCmd is the command (argv) that runs one node; the launcher
	// appends the node flags. Empty defaults to the running executable
	// with "-node" — ensemble-node re-execs itself.
	NodeCmd []string
	// Artifacts is the directory node outputs land in (default
	// ".multiproc-artifacts"). Removed after a clean run unless Keep.
	Artifacts string
	Keep      bool
	// Timeout bounds each protocol phase and the whole run.
	Timeout time.Duration
	// Log receives progress lines (nil = quiet).
	Log io.Writer
	// Loss / LossSeed / BumpAfter are forwarded to every node (see
	// NodeConfig): injected receive-side frame loss and a forced mid-run
	// generation bump. The reference run stays loss-free — equivalence
	// under injected loss is exactly the claim being checked.
	Loss      float64
	LossSeed  int64
	BumpAfter int
}

// LaunchResult is a completed (not necessarily equivalent) run.
type LaunchResult struct {
	W Workload
	// Logs are the per-member delivery sequences of the UDP run.
	Logs [][]MsgID
	// Ref is the in-process netsim reference of the same workload.
	Ref *ReferenceResult
	// Merged is the cross-process merged flight dump.
	Merged []byte
	// FlightDivs are delivery-series divergences between the merged
	// UDP flight and the reference flight (empty on a clean run).
	FlightDivs []obs.Divergence
	// UDP is each node's socket accounting.
	UDP []netsim.UDPStats
	// Telemetry holds the final live-plane snapshot polled from each
	// node after DONE, before EXIT (nil entries for unreachable nodes).
	Telemetry []obs.Snapshot
	// Artifacts is where the run's files are (empty if removed).
	Artifacts string
}

// ErrNoLoopback reports that the environment cannot bind loopback UDP
// sockets; callers (make multiproc) skip rather than fail.
var ErrNoLoopback = fmt.Errorf("deploy: loopback UDP unavailable")

// LoopbackAvailable probes for a bindable loopback UDP socket.
func LoopbackAvailable() error {
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoLoopback, err)
	}
	return c.Close()
}

// Launch runs the full multi-process equivalence check. A non-nil
// error means the run failed or diverged; the result (when non-nil)
// and the kept artifacts directory carry the evidence either way.
func Launch(cfg LaunchConfig) (*LaunchResult, error) {
	w := cfg.W
	if w.Members < 2 || w.Rounds < 1 {
		return nil, fmt.Errorf("deploy: launch needs >= 2 members and >= 1 round, got %d/%d", w.Members, w.Rounds)
	}
	if err := LoopbackAvailable(); err != nil {
		return nil, err
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	dir := cfg.Artifacts
	if dir == "" {
		dir = ".multiproc-artifacts"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	// Reserve one loopback port per member, then release them for the
	// nodes to bind. (The usual bind-then-close reservation; on a quiet
	// loopback the window is harmless, and a collision fails loudly at
	// node startup.)
	hosts := make([]Host, w.Members)
	socks := make([]*net.UDPConn, w.Members)
	for i := range hosts {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return nil, fmt.Errorf("deploy: reserving port %d: %w", i, err)
		}
		socks[i] = c
		hosts[i] = Host{ID: i + 1, Addr: c.LocalAddr().String()}
	}
	for _, c := range socks {
		c.Close()
	}
	hostsText, err := FormatHosts(hosts)
	if err != nil {
		return nil, err
	}
	hostsPath := filepath.Join(dir, "hosts.txt")
	if err := os.WriteFile(hostsPath, []byte(hostsText), 0o644); err != nil {
		return nil, err
	}

	nodeCmd := cfg.NodeCmd
	if len(nodeCmd) == 0 {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("deploy: resolving node binary: %w", err)
		}
		nodeCmd = []string{self}
	}

	// Spawn the fleet.
	type proc struct {
		cmd    *exec.Cmd
		handle *nodeHandle
		stderr *bytes.Buffer
		out    string
	}
	procs := make([]*proc, w.Members)
	res := &LaunchResult{W: w, Artifacts: dir}
	defer func() {
		for _, p := range procs {
			if p != nil && p.cmd.Process != nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	}()
	for i := range procs {
		id := i + 1
		outPath := filepath.Join(dir, fmt.Sprintf("node%d.json", id))
		args := append(append([]string(nil), nodeCmd[1:]...),
			"-id", strconv.Itoa(id),
			"-hosts", hostsPath,
			"-rounds", strconv.Itoa(w.Rounds),
			"-size", strconv.Itoa(w.Size),
			"-seed", strconv.FormatInt(w.Seed, 10),
			"-timeout", timeout.String(),
			"-out", outPath,
			"-telemetry", "127.0.0.1:0",
		)
		if cfg.Loss > 0 {
			args = append(args,
				"-loss", strconv.FormatFloat(cfg.Loss, 'g', -1, 64),
				"-lossseed", strconv.FormatInt(cfg.LossSeed, 10),
			)
		}
		if cfg.BumpAfter > 0 {
			args = append(args, "-bump", strconv.Itoa(cfg.BumpAfter))
		}
		cmd := exec.Command(nodeCmd[0], args...)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return res, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return res, err
		}
		stderr := &bytes.Buffer{}
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			return res, fmt.Errorf("deploy: spawning node %d: %w", id, err)
		}
		procs[i] = &proc{
			cmd:    cmd,
			handle: &nodeHandle{name: fmt.Sprintf("node%d", id), in: stdin, lines: protoLines(stdout)},
			stderr: stderr,
			out:    outPath,
		}
	}
	logf("multiproc: %d nodes spawned on loopback (hosts %s)", w.Members, hostsPath)

	handles := make([]*nodeHandle, len(procs))
	for i, p := range procs {
		handles[i] = p.handle
	}
	// The barrier protocol, phase by phase, with the telemetry plane
	// interleaved: capture each node's TELEM address at READY, poll the
	// live registries between GO and DONE (the health table is the
	// mid-run view), and take a final poll after DONE — while every
	// node is still alive, holding its complete counters — to check
	// against the flight dumps later.
	coordErr := func() error {
		if err := gatherReady(handles, timeout); err != nil {
			return err
		}
		if err := broadcast(handles, protoGo); err != nil {
			return err
		}
		if snaps := pollTelemetry(handles); cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "multiproc: mid-run cluster health:\n%s", HealthTable(snaps))
		}
		if err := gatherDone(handles, timeout); err != nil {
			return err
		}
		res.Telemetry = pollTelemetry(handles)
		return broadcast(handles, protoExit)
	}()
	if coordErr != nil {
		for _, p := range procs {
			if p.stderr.Len() > 0 {
				logf("%s stderr: %s", p.handle.name, p.stderr.String())
			}
		}
		return res, fmt.Errorf("deploy: %w (artifacts kept in %s)", coordErr, dir)
	}
	// Reap: every node got EXIT; give them the phase timeout to flush
	// their outputs and go.
	for _, p := range procs {
		werr := make(chan error, 1)
		go func() { werr <- p.cmd.Wait() }()
		select {
		case err := <-werr:
			if err != nil {
				return res, fmt.Errorf("deploy: %s exited with %v (stderr: %s; artifacts kept in %s)",
					p.handle.name, err, p.stderr.String(), dir)
			}
		case <-time.After(timeout):
			p.cmd.Process.Kill()
			return res, fmt.Errorf("deploy: %s did not exit after EXIT (artifacts kept in %s)", p.handle.name, dir)
		}
	}
	logf("multiproc: workload complete on all %d nodes", w.Members)

	// Collect node outputs.
	res.Logs = make([][]MsgID, w.Members)
	res.UDP = make([]netsim.UDPStats, w.Members)
	flights := make([][]byte, w.Members)
	for i, p := range procs {
		data, err := os.ReadFile(p.out)
		if err != nil {
			return res, fmt.Errorf("deploy: node output: %w (artifacts kept in %s)", err, dir)
		}
		var nr NodeResult
		if err := json.Unmarshal(data, &nr); err != nil {
			return res, fmt.Errorf("deploy: node output %s: %w", p.out, err)
		}
		res.Logs[i] = nr.Log
		res.UDP[i] = nr.UDP
		flights[i] = nr.Flight
		// Per-node raw dumps stay alongside the merged one: flight-diff
		// works on any pair.
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("node%d.flight", i+1)), nr.Flight, 0o644); err != nil {
			return res, err
		}
	}
	res.Merged, err = obs.MergeDumps(flights...)
	if err != nil {
		return res, fmt.Errorf("deploy: merging node flights: %w (artifacts kept in %s)", err, dir)
	}
	if err := os.WriteFile(filepath.Join(dir, "merged.flight"), res.Merged, 0o644); err != nil {
		return res, err
	}

	// The live plane must agree with the post-mortem evidence: each
	// node's final telemetry snapshot (taken after DONE, while the
	// process was still alive) must report exactly the deliveries its
	// flight dump recorded — which is the full workload, since the
	// flight ring is sized not to wrap at launcher workloads.
	tracks, err := obs.ParseDump(res.Merged)
	if err != nil {
		return res, fmt.Errorf("deploy: parsing merged flight: %w", err)
	}
	for rank, s := range res.Telemetry {
		if s == nil {
			return res, fmt.Errorf("deploy: node %d telemetry unreachable at final poll (artifacts kept in %s)", rank+1, dir)
		}
		delivered, _ := s.Get(fmt.Sprintf("member%d/casts_delivered", rank))
		var dumped int64
		for _, r := range tracks[rank] {
			if r.Kind == obs.KindDeliver {
				dumped++
			}
		}
		if dumped < int64(referenceRing) && delivered != dumped {
			return res, fmt.Errorf(
				"deploy: member %d telemetry says %d delivered but the merged flight holds %d delivery records (artifacts kept in %s)",
				rank, delivered, dumped, dir)
		}
		if delivered != int64(w.Total()) {
			return res, fmt.Errorf(
				"deploy: member %d telemetry says %d delivered, want the %d-message workload (artifacts kept in %s)",
				rank, delivered, w.Total(), dir)
		}
	}
	logf("multiproc: telemetry plane consistent with flight dumps on all %d nodes", w.Members)

	// The in-process reference of the same workload.
	res.Ref, err = Reference(w)
	if err != nil {
		return res, fmt.Errorf("deploy: reference run: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "reference.flight"), res.Ref.Flight, 0o644); err != nil {
		return res, err
	}

	// The equivalence assertion: per-member delivery sequences must be
	// identical, and the flights' delivery series must agree.
	if rank, pos, a, b, ok := CompareLogs(res.Logs, res.Ref.Logs); !ok {
		return res, fmt.Errorf(
			"deploy: delivery divergence at member %d position %d: udp=%+v netsim=%+v (artifacts kept in %s; flight-diff %s/merged.flight %s/reference.flight)",
			rank, pos, a, b, dir, dir, dir)
	}
	res.FlightDivs, err = obs.DiffDumps(res.Merged, res.Ref.Flight, obs.DiffOptions{Kinds: []obs.Kind{obs.KindDeliver}})
	if err != nil {
		return res, err
	}
	if len(res.FlightDivs) > 0 {
		return res, fmt.Errorf("deploy: flight delivery series diverge: %s (artifacts kept in %s)",
			res.FlightDivs[0], dir)
	}
	logf("multiproc: %d members x %d rounds equivalent to netsim seed %d (%d deliveries per member)",
		w.Members, w.Rounds, w.Seed, w.Total())
	if !cfg.Keep {
		os.RemoveAll(dir)
		res.Artifacts = ""
	}
	return res, nil
}

// nodeHandle is one node's control channel: the launcher's view of a
// spawned process — or, in the in-process harness the tests use, of a
// goroutine running RunNode behind a pipe pair. telem fills in during
// the READY gather when the node announced a telemetry address.
type nodeHandle struct {
	name  string
	in    io.Writer
	lines <-chan string
	telem string
}

// coordinate drives the barrier protocol over a set of nodes: gather
// READY from all, broadcast GO, gather DONE from all, broadcast EXIT.
// Any node missing a phase fails the run with its name attached.
func coordinate(nodes []*nodeHandle, timeout time.Duration) error {
	if err := gatherReady(nodes, timeout); err != nil {
		return err
	}
	if err := broadcast(nodes, protoGo); err != nil {
		return err
	}
	if err := gatherDone(nodes, timeout); err != nil {
		return err
	}
	return broadcast(nodes, protoExit)
}

// gatherReady collects READY from every node, capturing any "TELEM
// <addr>" announcement that precedes it into the handle.
func gatherReady(nodes []*nodeHandle, timeout time.Duration) error {
	for _, n := range nodes {
		observe := func(line string) {
			if addr, ok := strings.CutPrefix(line, protoTelem+" "); ok {
				n.telem = strings.TrimSpace(addr)
			}
		}
		if _, err := protoExpectObs(n.lines, timeout, observe, protoReady); err != nil {
			return fmt.Errorf("%s never became %s: %w", n.name, protoReady, err)
		}
	}
	return nil
}

// gatherDone collects DONE from every node (the pre-DONE STATS line is
// protocol chatter and falls through).
func gatherDone(nodes []*nodeHandle, timeout time.Duration) error {
	for _, n := range nodes {
		if _, err := protoExpect(n.lines, timeout, protoDone); err != nil {
			return fmt.Errorf("%s never reported %s: %w", n.name, protoDone, err)
		}
	}
	return nil
}

// broadcast sends one protocol word down to every node.
func broadcast(nodes []*nodeHandle, word string) error {
	for _, n := range nodes {
		if _, err := fmt.Fprintln(n.in, word); err != nil {
			return fmt.Errorf("sending %s to %s: %w", word, n.name, err)
		}
	}
	return nil
}

// pollTelemetry fetches a snapshot from every node that announced a
// telemetry address; unreachable nodes yield a nil entry.
func pollTelemetry(nodes []*nodeHandle) []obs.Snapshot {
	snaps := make([]obs.Snapshot, len(nodes))
	for i, n := range nodes {
		if n.telem == "" {
			continue
		}
		if s, err := FetchSnapshot(n.telem); err == nil {
			snaps[i] = s
		}
	}
	return snaps
}
