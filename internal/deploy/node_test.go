package deploy

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ensemble/internal/obs"
)

// inprocCluster runs N RunNode instances as goroutines behind pipe
// pairs and coordinates them with the same coordinate() the process
// launcher uses. It is the multi-process topology minus fork/exec: real
// loopback datagrams between real UDPNet sockets, one member per
// "node", exercised under -race.
func inprocCluster(t *testing.T, w Workload, timeout time.Duration) ([]NodeResult, []error) {
	t.Helper()
	return inprocClusterCfg(t, w, timeout, nil)
}

// inprocClusterCfg is inprocCluster with a per-node config hook: mod
// (when non-nil) edits each NodeConfig before RunNode — the seam the
// loss/generation-bump tests use.
func inprocClusterCfg(t *testing.T, w Workload, timeout time.Duration, mod func(*NodeConfig)) ([]NodeResult, []error) {
	t.Helper()
	if err := LoopbackAvailable(); err != nil {
		t.Skipf("skipping: %v", err)
	}
	hosts := make([]Host, w.Members)
	socks := make([]*net.UDPConn, w.Members)
	for i := range hosts {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatalf("reserving port: %v", err)
		}
		socks[i] = c
		hosts[i] = Host{ID: i + 1, Addr: c.LocalAddr().String()}
	}
	for _, c := range socks {
		c.Close()
	}

	results := make([]NodeResult, w.Members)
	errs := make([]error, w.Members)
	handles := make([]*nodeHandle, w.Members)
	var wg sync.WaitGroup
	for i := 0; i < w.Members; i++ {
		ctrlR, ctrlW := io.Pipe()
		statR, statW := io.Pipe()
		handles[i] = &nodeHandle{name: fmt.Sprintf("node%d", i+1), in: ctrlW, lines: protoLines(statR)}
		wg.Add(1)
		go func(id int, ctrl io.Reader, status io.Writer) {
			defer wg.Done()
			cfg := NodeConfig{ID: id, Hosts: hosts, W: w, Timeout: timeout}
			if mod != nil {
				mod(&cfg)
			}
			results[id-1], errs[id-1] = RunNode(cfg, ctrl, status)
		}(i+1, ctrlR, statW)
	}
	if err := coordinate(handles, timeout); err != nil {
		t.Errorf("coordinate: %v", err)
	}
	wg.Wait()
	return results, errs
}

// TestInProcessClusterMatchesReference is the equivalence assertion in
// miniature: a 4-member cluster over real loopback UDP must deliver
// exactly what the netsim reference of the same workload delivers, and
// the merged flight's delivery series must agree with the reference's.
func TestInProcessClusterMatchesReference(t *testing.T) {
	w := Workload{Members: 4, Rounds: 6, Size: 128, Seed: 11}
	results, errs := inprocCluster(t, w, 30*time.Second)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}

	logs := make([][]MsgID, w.Members)
	flights := make([][]byte, w.Members)
	for i, r := range results {
		logs[i] = r.Log
		flights[i] = r.Flight
		if r.UDP.UnknownSource != 0 {
			t.Errorf("node %d counted %d unknown-source datagrams on a closed cluster", i+1, r.UDP.UnknownSource)
		}
		if len(r.Metrics) == 0 {
			t.Errorf("node %d has an empty metrics snapshot", i+1)
		}
	}

	ref, err := Reference(w)
	if err != nil {
		t.Fatal(err)
	}
	if rank, pos, a, b, ok := CompareLogs(logs, ref.Logs); !ok {
		t.Fatalf("delivery divergence at member %d position %d: udp=%+v netsim=%+v", rank, pos, a, b)
	}

	merged, err := obs.MergeDumps(flights...)
	if err != nil {
		t.Fatal(err)
	}
	divs, err := obs.DiffDumps(merged, ref.Flight, obs.DiffOptions{Kinds: []obs.Kind{obs.KindDeliver}})
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) > 0 {
		t.Fatalf("flight delivery series diverge: %s", divs[0])
	}
}

// TestInProcessClusterLossBumpMatchesReference is the adversarial
// equivalence assertion: an 8-member loopback cluster with seeded
// receive-side frame loss on every node AND a forced mid-run
// generation bump (every chain restarts from a full-header anchor,
// stale-tagged frames land at every peer) must still deliver exactly
// the loss-free netsim reference sequence — NAK repair plus the 0xBA
// resync path absorb both injections without reordering anything.
func TestInProcessClusterLossBumpMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 8-member loss run in -short")
	}
	w := Workload{Members: 8, Rounds: 4, Size: 64, Seed: 43}
	results, errs := inprocClusterCfg(t, w, 60*time.Second, func(cfg *NodeConfig) {
		cfg.Loss = 0.05
		cfg.LossSeed = 7
		cfg.BumpAfter = w.Total() / 2
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}

	logs := make([][]MsgID, w.Members)
	var drops int64
	for i, r := range results {
		logs[i] = r.Log
		drops += r.UDP.InjectedDrops
	}
	// The injection must have actually happened — an equivalence pass
	// with zero drops would be vacuous.
	if drops == 0 {
		t.Fatalf("SetRecvLoss(0.05) dropped nothing across %d nodes", w.Members)
	}

	ref, err := Reference(w)
	if err != nil {
		t.Fatal(err)
	}
	if rank, pos, a, b, ok := CompareLogs(logs, ref.Logs); !ok {
		t.Fatalf("delivery divergence under loss+bump at member %d position %d: udp=%+v netsim=%+v", rank, pos, a, b)
	}
}

// TestNodeExitBeforeGo: a launcher that aborts at the barrier (EXIT
// instead of GO) must get a clean, error-free shutdown from every node.
func TestNodeExitBeforeGo(t *testing.T) {
	if err := LoopbackAvailable(); err != nil {
		t.Skipf("skipping: %v", err)
	}
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	hosts := []Host{{1, c.LocalAddr().String()}, {2, c2.LocalAddr().String()}}
	c.Close()
	c2.Close()

	ctrlR, ctrlW := io.Pipe()
	statR, statW := io.Pipe()
	lines := protoLines(statR)
	resCh := make(chan error, 1)
	go func() {
		_, err := RunNode(NodeConfig{
			ID: 1, Hosts: hosts, W: Workload{Rounds: 1, Size: 16}, Timeout: 10 * time.Second,
		}, ctrlR, statW)
		resCh <- err
	}()
	if _, err := protoExpect(lines, 10*time.Second, protoReady); err != nil {
		t.Fatalf("node never READY: %v", err)
	}
	fmt.Fprintln(ctrlW, protoExit)
	if err := <-resCh; err != nil {
		t.Fatalf("EXIT-before-GO shutdown returned %v", err)
	}
}
