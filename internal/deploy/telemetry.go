package deploy

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ensemble/internal/obs"
)

// The live telemetry plane: each node process exposes its metrics
// registry — member counters, latency histograms, UDP socket stats —
// over a loopback HTTP listener while the run is in flight, so the
// launcher (or a human with curl) can watch the cluster converge
// instead of waiting for the post-mortem flight dumps. Three
// endpoints:
//
//	/metrics   Prometheus-style text exposition (one "ensemble_<name>
//	           <value>" line per metric, names sanitized).
//	/snapshot  one length-prefixed binary snapshot frame (4-byte
//	           big-endian length, then obs.EncodeSnapshot bytes).
//	/stream    length-prefixed frames repeated every interval
//	           (?ms=N, default 100) until the client disconnects.
//
// The snapshot function is the node's bridge onto its Run goroutine;
// when the endpoint has shut down underneath it the server replies
// with the last snapshot it served, so a final poll racing node
// shutdown degrades to slightly stale data instead of an error.

// TelemetryServer serves a node's metrics registry over loopback HTTP.
type TelemetryServer struct {
	ln   net.Listener
	srv  *http.Server
	snap func() (obs.Snapshot, bool)
	last atomic.Pointer[obs.Snapshot]
}

// StartTelemetry binds addr (host:port; ":0" picks a port) and serves
// snapshots produced by snap. snap reports ok=false when a live
// snapshot cannot be taken (endpoint closed); the server then falls
// back to the last good one.
func StartTelemetry(addr string, snap func() (obs.Snapshot, bool)) (*TelemetryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("deploy: telemetry listen %q: %w", addr, err)
	}
	t := &TelemetryServer{ln: ln, snap: snap}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.handleMetrics)
	mux.HandleFunc("/snapshot", t.handleSnapshot)
	mux.HandleFunc("/stream", t.handleStream)
	t.srv = &http.Server{Handler: mux}
	go t.srv.Serve(ln)
	return t, nil
}

// Addr reports the bound listener address (useful with port 0).
func (t *TelemetryServer) Addr() string { return t.ln.Addr().String() }

// Close stops the listener and any in-flight streams.
func (t *TelemetryServer) Close() error { return t.srv.Close() }

// take produces the freshest snapshot available: live if the node's
// Run goroutine still answers, else the last one served.
func (t *TelemetryServer) take() (obs.Snapshot, bool) {
	if s, ok := t.snap(); ok {
		t.last.Store(&s)
		return s, true
	}
	if p := t.last.Load(); p != nil {
		return *p, true
	}
	return nil, false
}

func (t *TelemetryServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s, ok := t.take()
	if !ok {
		http.Error(w, "no snapshot available", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, m := range s {
		fmt.Fprintf(w, "ensemble_%s %d\n", promName(m.Name), m.Value)
	}
}

func (t *TelemetryServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s, ok := t.take()
	if !ok {
		http.Error(w, "no snapshot available", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	writeSnapshotFrame(w, s)
}

func (t *TelemetryServer) handleStream(w http.ResponseWriter, r *http.Request) {
	interval := 100 * time.Millisecond
	if msStr := r.URL.Query().Get("ms"); msStr != "" {
		ms, err := strconv.Atoi(msStr)
		if err != nil || ms < 1 {
			http.Error(w, "bad ms parameter", http.StatusBadRequest)
			return
		}
		interval = time.Duration(ms) * time.Millisecond
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	fl, _ := w.(http.Flusher)
	for {
		s, ok := t.take()
		if !ok {
			return
		}
		if err := writeSnapshotFrame(w, s); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(interval):
		}
	}
}

// writeSnapshotFrame writes one length-prefixed binary snapshot: a
// 4-byte big-endian frame length, then the obs.EncodeSnapshot bytes.
func writeSnapshotFrame(w io.Writer, s obs.Snapshot) error {
	enc := obs.EncodeSnapshot(s)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(enc)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(enc)
	return err
}

// promName sanitizes a registry metric name into the Prometheus
// exposition charset: every byte outside [a-zA-Z0-9_:] becomes '_'.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// FetchSnapshot polls one node's /snapshot endpoint and decodes the
// length-prefixed binary frame back into a Snapshot.
func FetchSnapshot(addr string) (obs.Snapshot, error) {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get("http://" + addr + "/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("deploy: telemetry %s: %s", addr, resp.Status)
	}
	return readSnapshotFrame(resp.Body)
}

// readSnapshotFrame reads one length-prefixed snapshot frame.
func readSnapshotFrame(r io.Reader) (obs.Snapshot, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("deploy: telemetry frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	const maxFrame = 16 << 20
	if n > maxFrame {
		return nil, fmt.Errorf("deploy: telemetry frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("deploy: telemetry frame body: %w", err)
	}
	return obs.ParseSnapshot(buf)
}

// HealthTable renders an aggregated cluster health table from one
// snapshot per member: deliveries, resync traffic, and the p99
// end-to-end cast latency each member measured on its own casts. A nil
// snapshot (node unreachable) renders as dashes rather than failing
// the table.
func HealthTable(snaps []obs.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %10s %10s %12s\n", "member", "delivered", "resyncs", "gen-miss", "p99(e2e)")
	for rank, s := range snaps {
		if s == nil {
			fmt.Fprintf(&b, "%-8d %12s %10s %10s %12s\n", rank, "-", "-", "-", "-")
			continue
		}
		pre := fmt.Sprintf("member%d/", rank)
		casts, _ := s.Get(pre + "casts_delivered")
		sends, _ := s.Get(pre + "sends_delivered")
		resyncs, _ := s.Get("udp/resyncs")
		misses, _ := s.Get("udp/gen_misses")
		p99, ok := s.Get(pre + "lat/e2e_ns/p99")
		p99s := "-"
		if ok {
			p99s = time.Duration(p99).String()
		}
		fmt.Fprintf(&b, "%-8d %12d %10d %10d %12s\n", rank, casts+sends, resyncs, misses, p99s)
	}
	return b.String()
}
