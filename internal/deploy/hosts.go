// Package deploy turns the single-process reproduction into a
// deployable system: it bootstraps one ClusterGroup member per OS
// process over real UDP sockets from a hosts file (the EPFL CS-451
// perfect-links layout: one "id host port" line per member), launches
// and coordinates N such processes on loopback, and checks that the
// physically distributed composition delivers exactly what the
// in-process netsim composition of the same workload delivers — the
// composition-correctness discipline: the same layer stack must satisfy
// the same delivery properties regardless of how its components are
// physically composed.
package deploy

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"

	"ensemble/internal/event"
)

// Host is one hosts-file entry: a member id (1-based, doubling as the
// member's event.Addr; rank in the static deployment view is id-1) and
// the UDP socket address it listens on.
type Host struct {
	ID   int
	Addr string // host:port
}

// ParseHosts reads the hosts-file format: one "id host port" line per
// member, '#' comments and blank lines ignored. Every malformation a
// deployment actually produces is rejected with the offending line
// number: duplicate ids, non-positive ids, bad ports, trailing fields,
// and a member set that is not contiguous 1..N (ranks index arrays
// everywhere downstream). The result is sorted by id.
func ParseHosts(r io.Reader) ([]Host, error) {
	var hosts []Host
	seen := map[int]int{}
	sc := bufio.NewScanner(r)
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("hosts line %d: want \"id host port\", got %d fields", ln, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 1 {
			return nil, fmt.Errorf("hosts line %d: bad member id %q (ids are integers >= 1)", ln, fields[0])
		}
		if prev, dup := seen[id]; dup {
			return nil, fmt.Errorf("hosts line %d: duplicate id %d (first on line %d)", ln, id, prev)
		}
		seen[id] = ln
		host := fields[1]
		if host == "" {
			return nil, fmt.Errorf("hosts line %d: empty host", ln)
		}
		port, err := strconv.Atoi(fields[2])
		if err != nil || port < 1 || port > 65535 {
			return nil, fmt.Errorf("hosts line %d: bad port %q", ln, fields[2])
		}
		hosts = append(hosts, Host{ID: id, Addr: net.JoinHostPort(host, fields[2])})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hosts: %w", err)
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("hosts: no members")
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i].ID < hosts[j].ID })
	for i, h := range hosts {
		if h.ID != i+1 {
			return nil, fmt.Errorf("hosts: member ids must be contiguous 1..%d, missing id %d", len(hosts), i+1)
		}
	}
	return hosts, nil
}

// LoadHosts reads and parses a hosts file.
func LoadHosts(path string) ([]Host, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hosts, err := ParseHosts(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return hosts, nil
}

// FormatHosts renders hosts back into the file format (one "id host
// port" line, sorted by id) — what the launcher writes for its spawned
// nodes.
func FormatHosts(hosts []Host) (string, error) {
	var b strings.Builder
	for _, h := range hosts {
		host, port, err := net.SplitHostPort(h.Addr)
		if err != nil {
			return "", fmt.Errorf("hosts: member %d address %q: %w", h.ID, h.Addr, err)
		}
		fmt.Fprintf(&b, "%d %s %s\n", h.ID, host, port)
	}
	return b.String(), nil
}

// PeerMap converts a host list into UDPNet's peer table.
func PeerMap(hosts []Host) map[event.Addr]string {
	m := make(map[event.Addr]string, len(hosts))
	for _, h := range hosts {
		m[event.Addr(h.ID)] = h.Addr
	}
	return m
}

// SelfAddr returns the listen address of member id, or an error naming
// the id when the hosts file does not contain it — a node launched with
// an -id outside its own hosts file is misconfigured, not a member.
func SelfAddr(hosts []Host, id int) (string, error) {
	for _, h := range hosts {
		if h.ID == id {
			return h.Addr, nil
		}
	}
	return "", fmt.Errorf("hosts: member id %d not in hosts file (%d members)", id, len(hosts))
}
