// Package layer defines the common micro-protocol interface that every
// Ensemble component adheres to (paper §2): a layer has a top-level and a
// bottom-level interface, receives events from the adjacent layers, and
// emits events to them. A particular micro-protocol implementation
// constitutes a component; the registry maps component names to
// constructors so stacks can be configured by name, which is exactly the
// input the paper's dynamic optimizer takes (§4.1.3).
package layer

import (
	"fmt"
	"sort"
	"sync"

	"ensemble/internal/event"
)

// Sink receives the events a layer emits. The stack glue decides what
// PassUp/PassDn mean: in the imperative model they enqueue into the
// central scheduler; in the functional model they recurse into the
// adjacent layer.
type Sink interface {
	// PassUp hands an event to the layer above (or to the application
	// when emitted by the top layer).
	PassUp(*event.Event)
	// PassDn hands an event to the layer below (or to the transport when
	// emitted by the bottom layer).
	PassDn(*event.Event)
}

// Config parameterizes a layer instance. Components are individually
// parameterized at configuration time (paper §1).
type Config struct {
	View *event.View

	// MaxFragSize bounds the payload of one fragment (frag layer).
	MaxFragSize int

	// WindowSize bounds outstanding point-to-point messages (pt2ptw).
	WindowSize int64

	// CreditBytes is the multicast flow-control credit quantum (mflow).
	CreditBytes int64

	// SweepInterval is the virtual-time interval between housekeeping
	// timer sweeps (retransmission, stability gossip), in nanoseconds.
	SweepInterval int64

	// SuspectTimeout is how long without traffic before a peer is
	// suspected (suspect layer), in nanoseconds.
	SuspectTimeout int64

	// SignKey is the shared HMAC key for the sign layer; required when
	// the stack contains it.
	SignKey []byte

	// MembFanout selects the membership layer's dissemination topology.
	// 0 (the default) picks automatically: flush rounds and view
	// announcements travel a k-ary tree over the survivor ranks once the
	// view reaches treeThreshold members, and go coordinator-direct
	// below it. -1 forces the flat protocol at any size; k > 0 forces a
	// k-ary tree at any size.
	MembFanout int
}

// DefaultConfig returns the parameters used by the paper-style stacks.
func DefaultConfig(v *event.View) Config {
	return Config{
		View:           v,
		MaxFragSize:    8192,
		WindowSize:     64,
		CreditBytes:    1 << 16,
		SweepInterval:  int64(50e6), // 50ms
		SuspectTimeout: int64(1e9),  // 1s
	}
}

// State is one instantiated layer: the collected variables the protocol
// maintains plus its two event handlers. Thinking of a protocol as a
// function from (state, input event) to (state, output events) is the
// view the optimizer takes of it (§4.1).
type State interface {
	// Name reports the component name the state was built from.
	Name() string
	// HandleUp processes an event arriving from the layer below.
	HandleUp(ev *event.Event, snk Sink)
	// HandleDn processes an event arriving from the layer above.
	HandleDn(ev *event.Event, snk Sink)
}

// Builder constructs a fresh layer state for a view.
type Builder func(cfg Config) State

var (
	mu       sync.RWMutex
	registry = map[string]Builder{}
)

// Register installs a component under its name. Layer packages call it
// from init; registering a duplicate name panics because it means two
// components collide in the library.
func Register(name string, b Builder) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("layer: duplicate registration of %q", name))
	}
	registry[name] = b
}

// Lookup returns the builder for a component name.
func Lookup(name string) (Builder, error) {
	mu.RLock()
	defer mu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("layer: unknown component %q", name)
	}
	return b, nil
}

// Names lists every registered component, sorted, mirroring Ensemble's
// "library of over sixty components" (§2) at the scale we build.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PassThroughUp forwards an event upward unchanged. Layers use it for
// event types they do not interpret, preserving the Ensemble convention
// that unknown events flow through.
func PassThroughUp(ev *event.Event, snk Sink) { snk.PassUp(ev) }

// PassThroughDn forwards an event downward unchanged.
func PassThroughDn(ev *event.Event, snk Sink) { snk.PassDn(ev) }
