package layer

import (
	"strings"
	"testing"

	"ensemble/internal/event"
)

type nopState struct{ name string }

func (s *nopState) Name() string                       { return s.name }
func (s *nopState) HandleUp(ev *event.Event, snk Sink) { snk.PassUp(ev) }
func (s *nopState) HandleDn(ev *event.Event, snk Sink) { snk.PassDn(ev) }

func TestRegistryLookupAndNames(t *testing.T) {
	Register("test-layer-a", func(cfg Config) State { return &nopState{name: "test-layer-a"} })
	Register("test-layer-b", func(cfg Config) State { return &nopState{name: "test-layer-b"} })

	b, err := Lookup("test-layer-a")
	if err != nil {
		t.Fatal(err)
	}
	st := b(Config{})
	if st.Name() != "test-layer-a" {
		t.Fatalf("built %q", st.Name())
	}
	if _, err := Lookup("never-registered"); err == nil {
		t.Fatal("unknown component looked up")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
	found := 0
	for _, n := range names {
		if strings.HasPrefix(n, "test-layer-") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("registered components missing from Names: %v", names)
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Register("test-layer-a", nil)
}

func TestDefaultConfig(t *testing.T) {
	v := event.NewView("g", 1, []event.Addr{1, 2}, 0)
	cfg := DefaultConfig(v)
	if cfg.View != v || cfg.MaxFragSize <= 0 || cfg.WindowSize <= 0 ||
		cfg.CreditBytes <= 0 || cfg.SweepInterval <= 0 || cfg.SuspectTimeout <= 0 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	if cfg.SuspectTimeout <= cfg.SweepInterval {
		t.Fatal("suspicion must outlast several sweeps")
	}
}

func TestPassThroughHelpers(t *testing.T) {
	var ups, dns int
	snk := sinkFuncs{
		up: func(*event.Event) { ups++ },
		dn: func(*event.Event) { dns++ },
	}
	ev := event.Alloc()
	PassThroughUp(ev, snk)
	PassThroughDn(ev, snk)
	if ups != 1 || dns != 1 {
		t.Fatalf("ups=%d dns=%d", ups, dns)
	}
	event.Free(ev)
}

type sinkFuncs struct{ up, dn func(*event.Event) }

func (s sinkFuncs) PassUp(ev *event.Event) { s.up(ev) }
func (s sinkFuncs) PassDn(ev *event.Event) { s.dn(ev) }
