package spec

import (
	"strings"
	"testing"
)

// Tiny scripted automata for pinning composition semantics.

type scriptAuto struct {
	name string
	sig  map[string]Kind
	init State
}

func (a *scriptAuto) Name() string              { return a.name }
func (a *scriptAuto) Signature() map[string]Kind { return a.sig }
func (a *scriptAuto) Initial() []State          { return []State{a.init} }

type scriptState struct {
	key   string
	steps func() []Step
}

func (s *scriptState) Key() string   { return s.key }
func (s *scriptState) Steps() []Step { return s.steps() }

func st(key string, steps func() []Step) *scriptState {
	return &scriptState{key: key, steps: steps}
}

// TestComposeSynchronizesSharedActions: an output of one component and
// the matching input of another fire as one composed step; mismatched
// parameters do not synchronize.
func TestComposeSynchronizesSharedActions(t *testing.T) {
	done := st("done", func() []Step { return nil })
	producer := &scriptAuto{
		name: "prod",
		sig:  map[string]Kind{"msg": Output},
		init: st("p0", func() []Step {
			return []Step{{Ev: Event{Name: "msg", Params: []int{7}}, Next: done}}
		}),
	}
	consumed := st("c-done", func() []Step { return nil })
	consumer := &scriptAuto{
		name: "cons",
		sig:  map[string]Kind{"msg": Input, "out": Output},
		init: st("c0", func() []Step {
			return []Step{
				{Ev: Event{Name: "msg", Params: []int{7}}, Next: consumed},
				{Ev: Event{Name: "msg", Params: []int{8}}, Next: consumed}, // input-enabled for 8 too
			}
		}),
	}
	c := Compose("t", nil, producer, consumer)
	init := c.Initial()
	if len(init) != 1 {
		t.Fatalf("%d initial states", len(init))
	}
	steps := init[0].Steps()
	// Only msg(7) synchronizes: the producer cannot emit msg(8).
	if len(steps) != 1 || steps[0].Ev.Key() != "msg(7)" {
		var keys []string
		for _, s := range steps {
			keys = append(keys, s.Ev.Key())
		}
		t.Fatalf("composed steps = %v, want [msg(7)]", keys)
	}
	if !strings.Contains(steps[0].Next.Key(), "done") || !strings.Contains(steps[0].Next.Key(), "c-done") {
		t.Fatalf("both parts must advance: %s", steps[0].Next.Key())
	}
}

// TestComposeBlocksWhenInputSideNotEnabled: if the input sharer has no
// matching transition, the composed step does not exist.
func TestComposeBlocksWhenInputSideNotEnabled(t *testing.T) {
	producer := &scriptAuto{
		name: "prod",
		sig:  map[string]Kind{"msg": Output},
		init: st("p0", func() []Step {
			return []Step{{Ev: Event{Name: "msg", Params: []int{9}}, Next: st("p1", func() []Step { return nil })}}
		}),
	}
	consumer := &scriptAuto{
		name: "cons",
		sig:  map[string]Kind{"msg": Input},
		init: st("c0", func() []Step { return nil }), // not input-enabled (a modeling bug)
	}
	c := Compose("t", nil, producer, consumer)
	if steps := c.Initial()[0].Steps(); len(steps) != 0 {
		t.Fatalf("composed steps = %d, want none", len(steps))
	}
}

// TestComposeHidesActions: hidden actions become internal.
func TestComposeHidesActions(t *testing.T) {
	a := &scriptAuto{
		name: "a",
		sig:  map[string]Kind{"x": Output},
		init: st("a0", func() []Step { return nil }),
	}
	c := Compose("t", []string{"x"}, a)
	if ActionKind(c, "x") != Internal {
		t.Fatal("hidden action not internal")
	}
}

// TestComposeRejectsTwoOutputs: two components outputting the same
// action name is a configuration bug.
func TestComposeRejectsTwoOutputs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	mk := func(n string) *scriptAuto {
		return &scriptAuto{name: n, sig: map[string]Kind{"x": Output}, init: st(n, func() []Step { return nil })}
	}
	Compose("t", nil, mk("a"), mk("b"))
}

// TestChannelSemantics pins loss and duplication on the packet channel.
func TestChannelSemantics(t *testing.T) {
	ch := &PacketChannel{Tag: "c", Universe: [][]int{{1}}}
	s0 := ch.Initial()[0]
	var afterSend State
	for _, step := range s0.Steps() {
		if step.Ev.Key() == "c.send(1)" {
			afterSend = step.Next
		}
	}
	if afterSend == nil {
		t.Fatal("channel refuses sends")
	}
	var delivered, dropped State
	for _, step := range afterSend.Steps() {
		switch step.Ev.Key() {
		case "c.deliver(1)":
			delivered = step.Next
		case "c.drop(1)":
			dropped = step.Next
		}
	}
	if delivered == nil || dropped == nil {
		t.Fatal("channel lacks deliver/drop transitions")
	}
	// Delivery does not consume: the packet can deliver again (dup).
	again := false
	for _, step := range delivered.Steps() {
		if step.Ev.Key() == "c.deliver(1)" {
			again = true
		}
	}
	if !again {
		t.Fatal("delivery consumed the packet; duplication impossible")
	}
	// Drop consumes.
	for _, step := range dropped.Steps() {
		if step.Ev.Key() == "c.deliver(1)" {
			t.Fatal("dropped packet still deliverable")
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Name: "Send", Params: []int{1, 2}}
	if e.String() != "Send(1,2)" || e.Key() != "Send(1,2)" {
		t.Fatalf("String = %q", e.String())
	}
	if (Event{Name: "Tick"}).String() != "Tick" {
		t.Fatal("no-param event renders wrong")
	}
}
