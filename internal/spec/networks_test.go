package spec

import (
	"strings"
	"testing"
)

// Direct automaton-level tests of the Fig. 2 specifications and the
// total-order automata; the refinement relations between them are
// checked in internal/check.

func findStep(t *testing.T, s State, key string) State {
	t.Helper()
	for _, st := range s.Steps() {
		if st.Ev.Key() == key {
			return st.Next
		}
	}
	t.Fatalf("no step %s from %s", key, s.Key())
	return nil
}

func hasStep(s State, key string) bool {
	for _, st := range s.Steps() {
		if st.Ev.Key() == key {
			return true
		}
	}
	return false
}

func TestFifoNetworkSendOncePerPair(t *testing.T) {
	fn := &FifoNetwork{N: 2, Msgs: 2}
	s := fn.Initial()[0]
	s = findStep(t, s, "Send(1,0)")
	if hasStep(s, "Send(1,0)") {
		t.Fatal("bounded FIFO network accepted a duplicate send")
	}
	if !hasStep(s, "Send(0,0)") || !hasStep(s, "Send(1,1)") {
		t.Fatal("other sends must stay enabled")
	}
}

func TestLossyNetworkDropIsSilent(t *testing.T) {
	ln := &LossyNetwork{N: 1, Msgs: 1}
	s := ln.Initial()[0]
	s = findStep(t, s, "Send(0,0)")
	s = findStep(t, s, "Drop(0,0)")
	if hasStep(s, "Deliver(0,0)") {
		t.Fatal("dropped message still deliverable")
	}
	// And the bounded send is spent: total silence is a valid execution.
	if hasStep(s, "Send(0,0)") {
		t.Fatal("drop refunded the bounded send")
	}
}

func TestTotalNetworkAgreesAcrossProcesses(t *testing.T) {
	tn := &TotalNetwork{N: 2, MsgsPerSender: 1}
	s := tn.Initial()[0]
	s = findStep(t, s, "Cast(0,0)")
	s = findStep(t, s, "Cast(1,0)")
	// Until ordered, nothing delivers.
	if hasStep(s, "Deliver(0,0,0)") || hasStep(s, "Deliver(0,1,0)") {
		t.Fatal("delivery before ordering")
	}
	// Order (1,0) first: every process must now deliver it first.
	s = findStep(t, s, "Order(1)") // msg id 1 = (sender 1, idx 0)
	for q := 0; q < 2; q++ {
		if hasStep(s, "Deliver("+string(rune('0'+q))+",0,0)") {
			t.Fatalf("process %d could deliver the unordered message first", q)
		}
	}
	s2 := findStep(t, s, "Deliver(0,1,0)")
	_ = findStep(t, s2, "Deliver(1,1,0)")
}

func TestTotalProtocolSequencerSelfStamps(t *testing.T) {
	tp := &TotalProtocol{N: 2, MsgsPerSender: 1, Orderly: true}
	s := tp.Initial()[0]
	s = findStep(t, s, "Cast(0,0)")
	// The sequencer can deliver its own cast immediately.
	if !hasStep(s, "Deliver(0,0,0)") {
		t.Fatal("sequencer cannot deliver its own stamped cast")
	}
	// The other member must first receive data and learn the order.
	if hasStep(s, "Deliver(1,0,0)") {
		t.Fatal("member 1 delivered without data or order")
	}
	s = findStep(t, s, "xfer(0,1,0)")  // data reaches member 1
	s = findStep(t, s, "learn(1,0)")   // announcement reaches member 1
	_ = findStep(t, s, "Deliver(1,0,0)")
}

func TestTotalProtocolCompleted(t *testing.T) {
	tp := &TotalProtocol{N: 1, MsgsPerSender: 1, Orderly: true}
	s := tp.Initial()[0]
	if tp.Completed(s) {
		t.Fatal("initial state completed")
	}
	s = findStep(t, s, "Cast(0,0)")
	s = findStep(t, s, "Deliver(0,0,0)")
	if !tp.Completed(s) {
		t.Fatal("all-delivered state not completed")
	}
	if len(s.Steps()) != 0 {
		t.Fatal("completed singleton instance still has steps")
	}
}

func TestKeysAreCanonical(t *testing.T) {
	// Two different interleavings reaching the same logical state must
	// produce the same key (the visited-set relies on it).
	ln := &LossyNetwork{N: 2, Msgs: 2}
	a := ln.Initial()[0]
	a = findStep(t, a, "Send(0,0)")
	a = findStep(t, a, "Send(1,1)")
	b := ln.Initial()[0]
	b = findStep(t, b, "Send(1,1)")
	b = findStep(t, b, "Send(0,0)")
	if a.Key() != b.Key() {
		t.Fatalf("keys differ for identical states:\n%s\n%s", a.Key(), b.Key())
	}
	if !strings.Contains(a.Key(), "0:0") {
		t.Fatalf("key lacks content: %s", a.Key())
	}
}
