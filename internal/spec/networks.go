package spec

import (
	"fmt"
)

// The abstract network specifications of Fig. 2, bounded for explicit-
// state checking: message values range over [0,Msgs), destinations over
// [0,N), and each (dst,msg) pair may be sent at most once (the standard
// bounding that keeps the reachable graph finite without changing the
// per-message delivery discipline being specified).

// FifoNetwork is Fig. 2(a): a single global in-transit queue; Deliver
// only at the head. Send is an input, Deliver an output.
type FifoNetwork struct {
	N, Msgs int
}

// Name implements Automaton.
func (f *FifoNetwork) Name() string { return "FifoNetwork" }

// Signature implements Automaton.
func (f *FifoNetwork) Signature() map[string]Kind {
	return map[string]Kind{"Send": Input, "Deliver": Output}
}

// Initial implements Automaton.
func (f *FifoNetwork) Initial() []State {
	return []State{&fifoNetState{n: f.N, msgs: f.Msgs}}
}

type fifoNetState struct {
	n, msgs int
	queue   [][2]int // (dst, msg), FIFO
	sent    map[[2]int]bool
}

func (s *fifoNetState) Key() string {
	parts := make([]string, len(s.queue))
	for i, p := range s.queue {
		parts[i] = fmt.Sprintf("%d:%d", p[0], p[1])
	}
	return KeyOf("q", IntsKey(flattenPairs(s.queue)))
}

func flattenPairs(ps [][2]int) []int {
	out := make([]int, 0, 2*len(ps))
	for _, p := range ps {
		out = append(out, p[0], p[1])
	}
	return out
}

func (s *fifoNetState) clone() *fifoNetState {
	cp := &fifoNetState{n: s.n, msgs: s.msgs}
	cp.queue = append([][2]int(nil), s.queue...)
	cp.sent = map[[2]int]bool{}
	for k, v := range s.sent {
		cp.sent[k] = v
	}
	return cp
}

// Steps implements State: Send(dst,msg) appends (each pair once, to
// bound the graph); Deliver(dst,msg) dequeues the head.
func (s *fifoNetState) Steps() []Step {
	var steps []Step
	for dst := 0; dst < s.n; dst++ {
		for m := 0; m < s.msgs; m++ {
			if s.sent != nil && s.sent[[2]int{dst, m}] {
				continue
			}
			next := s.clone()
			next.queue = append(next.queue, [2]int{dst, m})
			next.sent[[2]int{dst, m}] = true
			steps = append(steps, Step{Ev: Event{Name: "Send", Params: []int{dst, m}}, Next: next})
		}
	}
	if len(s.queue) > 0 {
		head := s.queue[0]
		next := s.clone()
		next.queue = next.queue[1:]
		steps = append(steps, Step{Ev: Event{Name: "Deliver", Params: []int{head[0], head[1]}}, Next: next})
	}
	return steps
}

// LossyNetwork is Fig. 2(b): an unordered in-transit set; Deliver leaves
// the element in place (so the network can duplicate); the internal Drop
// removes it (so the network can lose).
type LossyNetwork struct {
	N, Msgs int
}

// Name implements Automaton.
func (l *LossyNetwork) Name() string { return "LossyNetwork" }

// Signature implements Automaton.
func (l *LossyNetwork) Signature() map[string]Kind {
	return map[string]Kind{"Send": Input, "Deliver": Output, "Drop": Internal}
}

// Initial implements Automaton.
func (l *LossyNetwork) Initial() []State {
	return []State{&lossyNetState{n: l.N, msgs: l.Msgs, inTransit: map[[2]int]bool{}, sent: map[[2]int]bool{}}}
}

type lossyNetState struct {
	n, msgs   int
	inTransit map[[2]int]bool
	sent      map[[2]int]bool
}

func (s *lossyNetState) Key() string {
	var pairs [][2]int
	for p := range s.inTransit {
		pairs = append(pairs, p)
	}
	var sentPairs [][2]int
	for p := range s.sent {
		sentPairs = append(sentPairs, p)
	}
	return KeyOf("t", PairsKey(pairs), "s", PairsKey(sentPairs))
}

func (s *lossyNetState) clone() *lossyNetState {
	cp := &lossyNetState{n: s.n, msgs: s.msgs, inTransit: map[[2]int]bool{}, sent: map[[2]int]bool{}}
	for k := range s.inTransit {
		cp.inTransit[k] = true
	}
	for k := range s.sent {
		cp.sent[k] = true
	}
	return cp
}

// Steps implements State.
func (s *lossyNetState) Steps() []Step {
	var steps []Step
	for dst := 0; dst < s.n; dst++ {
		for m := 0; m < s.msgs; m++ {
			if s.sent[[2]int{dst, m}] {
				continue
			}
			next := s.clone()
			next.inTransit[[2]int{dst, m}] = true
			next.sent[[2]int{dst, m}] = true
			steps = append(steps, Step{Ev: Event{Name: "Send", Params: []int{dst, m}}, Next: next})
		}
	}
	for p := range s.inTransit {
		// Deliver without removing: duplication.
		steps = append(steps, Step{Ev: Event{Name: "Deliver", Params: []int{p[0], p[1]}}, Next: s.clone()})
		// Drop: loss.
		next := s.clone()
		delete(next.inTransit, p)
		steps = append(steps, Step{Ev: Event{Name: "Drop", Params: []int{p[0], p[1]}}, Next: next})
	}
	return steps
}
