package spec

import (
	"fmt"
	"strings"
)

// Compose implements I/O-automaton composition (§3.1): events with the
// same name are tied together — a step on a shared action requires every
// component with that action in its signature to take it simultaneously,
// combining their conditions and actions. Actions named in hide become
// internal to the composition (the tied Below.Send/Send pairs of the
// paper's FifoProtocol ∘ LossyNetwork construction); everything else
// keeps its visibility.
//
// Well-formedness: an action name may be the output of at most one
// component. Components must be input-enabled for their shared inputs
// whenever the outputting component can produce them; a violation
// surfaces as a missing transition during checking.
func Compose(name string, hide []string, parts ...Automaton) Automaton {
	hidden := map[string]bool{}
	for _, h := range hide {
		hidden[h] = true
	}
	sig := map[string]Kind{}
	owners := map[string][]int{}
	for i, p := range parts {
		for a, k := range p.Signature() {
			owners[a] = append(owners[a], i)
			if hidden[a] {
				sig[a] = Internal
				continue
			}
			switch prev, seen := sig[a]; {
			case !seen:
				sig[a] = k
			case k == Output && prev == Output:
				panic(fmt.Sprintf("spec: action %q is an output of two components of %s", a, name))
			case k == Output:
				// Output overrides input: the composition controls it.
				sig[a] = Output
			case k == Internal || prev == Internal:
				panic(fmt.Sprintf("spec: internal action %q shared in %s", a, name))
			}
		}
	}
	return &composition{name: name, parts: parts, sig: sig, owners: owners}
}

type composition struct {
	name   string
	parts  []Automaton
	sig    map[string]Kind
	owners map[string][]int // action name → indexes of parts sharing it
}

func (c *composition) Name() string              { return c.name }
func (c *composition) Signature() map[string]Kind { return c.sig }

func (c *composition) Initial() []State {
	states := []State{&compState{c: c}}
	for i := range c.parts {
		var next []State
		for _, ps := range c.parts[i].Initial() {
			for _, st := range states {
				cs := st.(*compState).clone()
				cs.subs = append(cs.subs, ps)
				next = append(next, cs)
			}
		}
		states = next
	}
	return states
}

type compState struct {
	c    *composition
	subs []State
}

func (s *compState) Key() string {
	parts := make([]string, len(s.subs))
	for i, sub := range s.subs {
		parts[i] = sub.Key()
	}
	return strings.Join(parts, "‖")
}

func (s *compState) clone() *compState {
	return &compState{c: s.c, subs: append([]State(nil), s.subs...)}
}

// Steps enumerates the composed transitions: for every event key enabled
// in some controlling component, every sharer must step on the identical
// event; the successor combines the individual successors.
func (s *compState) Steps() []Step {
	// stepsOf[i] groups part i's steps by event key.
	stepsOf := make([]map[string][]Step, len(s.subs))
	for i, sub := range s.subs {
		m := map[string][]Step{}
		for _, st := range sub.Steps() {
			m[st.Ev.Key()] = append(m[st.Ev.Key()], st)
		}
		stepsOf[i] = m
	}

	var out []Step
	emitted := map[string]bool{}
	for i := range s.subs {
		for key, sts := range stepsOf[i] {
			ev := sts[0].Ev
			sharers := s.c.owners[ev.Name]
			// The step is driven by the first sharer able to take it, to
			// avoid emitting the same composed event several times.
			if sharers[0] != i || emitted[key] {
				continue
			}
			// Inputs driven purely by the environment originate from the
			// composition boundary; shared outputs originate from their
			// owner. Either way every sharer must step on the event.
			combos := []*compState{s.clone()}
			ok := true
			for _, j := range sharers {
				choices := stepsOf[j][key]
				if j == i {
					choices = sts
				}
				if len(choices) == 0 {
					ok = false // a sharer is not enabled: no composed step
					break
				}
				var next []*compState
				for _, base := range combos {
					for _, ch := range choices {
						cs := base.clone()
						cs.subs[j] = ch.Next
						next = append(next, cs)
					}
				}
				combos = next
			}
			if !ok {
				continue
			}
			emitted[key] = true
			for _, cs := range combos {
				out = append(out, Step{Ev: ev, Next: cs})
			}
		}
	}
	return out
}
