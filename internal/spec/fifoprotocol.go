package spec

import (
	"fmt"
	"sort"
	"strings"
)

// The concrete behavioural specification of Fig. 3: a protocol that
// retransmits messages, removes duplicates, and delivers in order,
// implementing a FIFO network on top of a lossy one. The participant is
// split into its sender and receiver halves, composed with lossy packet
// channels via Compose (tying the protocol's Below.Send/Below.Deliver to
// the channels' send/deliver, exactly the event-tying construction of
// §3.1). The check package verifies the composition's external traces
// against the abstract FifoNetwork specification by bounded exhaustive
// search — the proof obligation the paper discharges by hand in [11].

// PacketChannel is a lossy channel: a set of packets in transit over a
// bounded universe; delivery leaves the packet in place (duplication),
// the internal drop removes it (loss).
type PacketChannel struct {
	// Tag names the channel's actions: Tag+".send" (input),
	// Tag+".deliver" (output), Tag+".drop" (internal).
	Tag string
	// Universe bounds the packet vocabulary so input acceptance is
	// enumerable; senders only emit packets within it.
	Universe [][]int
}

// Name implements Automaton.
func (c *PacketChannel) Name() string { return "chan-" + c.Tag }

// Signature implements Automaton.
func (c *PacketChannel) Signature() map[string]Kind {
	return map[string]Kind{
		c.Tag + ".send":    Input,
		c.Tag + ".deliver": Output,
		c.Tag + ".drop":    Internal,
	}
}

// Initial implements Automaton.
func (c *PacketChannel) Initial() []State {
	return []State{&chanState{ch: c, transit: map[string][]int{}}}
}

type chanState struct {
	ch      *PacketChannel
	transit map[string][]int
}

func (s *chanState) Key() string {
	keys := make([]string, 0, len(s.transit))
	for k := range s.transit {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return s.ch.Tag + "[" + strings.Join(keys, ";") + "]"
}

func (s *chanState) clone() *chanState {
	cp := &chanState{ch: s.ch, transit: make(map[string][]int, len(s.transit))}
	for k, v := range s.transit {
		cp.transit[k] = v
	}
	return cp
}

// Steps implements State.
func (s *chanState) Steps() []Step {
	var steps []Step
	for _, params := range s.ch.Universe {
		next := s.clone()
		next.transit[pktKey(params)] = params
		steps = append(steps, Step{Ev: Event{Name: s.ch.Tag + ".send", Params: params}, Next: next})
	}
	for k, params := range s.transit {
		// Deliver without removing: duplication.
		steps = append(steps, Step{Ev: Event{Name: s.ch.Tag + ".deliver", Params: params}, Next: s.clone()})
		next := s.clone()
		delete(next.transit, k)
		steps = append(steps, Step{Ev: Event{Name: s.ch.Tag + ".drop", Params: params}, Next: next})
	}
	return steps
}

func pktKey(params []int) string {
	parts := make([]string, len(params))
	for i, p := range params {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return strings.Join(parts, ",")
}

// fifoSender is the sending half of FifoProtocol: it numbers accepted
// messages, retransmits unacknowledged ones (the Timer action of Fig. 3,
// modelled as an always-enabled internal retransmission), and discards
// acknowledged buffers.
type fifoSender struct {
	dst, msgs int
}

// NewFifoSender builds the sender half for destination dst with the
// message universe [0,msgs).
func NewFifoSender(dst, msgs int) Automaton { return &fifoSender{dst: dst, msgs: msgs} }

func (f *fifoSender) Name() string { return "FifoSender" }

func (f *fifoSender) Signature() map[string]Kind {
	return map[string]Kind{
		"Send":         Input,  // Above.Send(dst, msg)
		"data.send":    Output, // Below.Send of a (seq,msg) packet
		"ack.deliver":  Input,  // Below.Deliver of a cumulative ack
	}
}

func (f *fifoSender) Initial() []State {
	return []State{&fifoSenderState{a: f}}
}

type fifoSenderState struct {
	a       *fifoSender
	nextSeq int
	buf     [][2]int // unacknowledged (seq, msg)
}

func (s *fifoSenderState) Key() string {
	return KeyOf("snd", fmt.Sprintf("%d", s.nextSeq), IntsKey(flattenPairs(s.buf)))
}

func (s *fifoSenderState) clone() *fifoSenderState {
	return &fifoSenderState{a: s.a, nextSeq: s.nextSeq, buf: append([][2]int(nil), s.buf...)}
}

func (s *fifoSenderState) Steps() []Step {
	var steps []Step
	// Above.Send: accept the next message while the bound allows. The
	// message value equals its sequence number in the bounded driver
	// discipline, keeping the universe small without weakening the FIFO
	// obligation.
	if s.nextSeq < s.a.msgs {
		next := s.clone()
		next.buf = append(next.buf, [2]int{s.nextSeq, s.nextSeq})
		next.nextSeq++
		steps = append(steps, Step{Ev: Event{Name: "Send", Params: []int{s.a.dst, s.nextSeq}}, Next: next})
	}
	// Below.Send: (re)transmit any buffered packet — the timer-driven
	// retransmission of Fig. 3.
	for _, p := range s.buf {
		steps = append(steps, Step{Ev: Event{Name: "data.send", Params: []int{p[0], p[1]}}, Next: s.clone()})
	}
	// Ack processing: a cumulative ack a discards buffers below a.
	for a := 0; a <= s.a.msgs; a++ {
		next := s.clone()
		next.buf = next.buf[:0]
		for _, p := range s.buf {
			if p[0] >= a {
				next.buf = append(next.buf, p)
			}
		}
		steps = append(steps, Step{Ev: Event{Name: "ack.deliver", Params: []int{a}}, Next: next})
	}
	return steps
}

// fifoReceiver is the receiving half: it drops duplicates, delivers in
// order, and acknowledges cumulatively.
type fifoReceiver struct {
	dst, msgs int
}

// NewFifoReceiver builds the receiver half.
func NewFifoReceiver(dst, msgs int) Automaton { return &fifoReceiver{dst: dst, msgs: msgs} }

func (f *fifoReceiver) Name() string { return "FifoReceiver" }

func (f *fifoReceiver) Signature() map[string]Kind {
	return map[string]Kind{
		"data.deliver": Input,  // Below.Deliver of a (seq,msg) packet
		"Deliver":      Output, // Above.Deliver(dst, msg)
		"ack.send":     Output, // Below.Send of a cumulative ack
	}
}

func (f *fifoReceiver) Initial() []State {
	return []State{&fifoReceiverState{a: f}}
}

type fifoReceiverState struct {
	a       *fifoReceiver
	expect  int   // next in-order sequence number
	pending []int // received in-order messages not yet handed up
}

func (s *fifoReceiverState) Key() string {
	return KeyOf("rcv", fmt.Sprintf("%d", s.expect), IntsKey(s.pending))
}

func (s *fifoReceiverState) clone() *fifoReceiverState {
	return &fifoReceiverState{a: s.a, expect: s.expect, pending: append([]int(nil), s.pending...)}
}

func (s *fifoReceiverState) Steps() []Step {
	var steps []Step
	// Below.Deliver: in-order packets advance the window; duplicates and
	// out-of-order packets are absorbed (this simple receiver does not
	// buffer ahead — reordering is repaired by retransmission).
	for seq := 0; seq < s.a.msgs; seq++ {
		for m := 0; m < s.a.msgs; m++ {
			next := s.clone()
			if seq == s.expect {
				next.expect++
				next.pending = append(next.pending, m)
			}
			steps = append(steps, Step{Ev: Event{Name: "data.deliver", Params: []int{seq, m}}, Next: next})
		}
	}
	// Above.Deliver drains in order.
	if len(s.pending) > 0 {
		next := s.clone()
		m := next.pending[0]
		next.pending = next.pending[1:]
		steps = append(steps, Step{Ev: Event{Name: "Deliver", Params: []int{s.a.dst, m}}, Next: next})
	}
	// Cumulative acknowledgment of everything contiguously received.
	steps = append(steps, Step{Ev: Event{Name: "ack.send", Params: []int{s.expect}}, Next: s.clone()})
	return steps
}

// FifoProtocolSystem composes the Fig. 3 protocol with lossy channels:
// sender ∘ data-channel ∘ receiver ∘ ack-channel, with the Below.* events
// hidden. Its external signature — Send(dst,msg) in, Deliver(dst,msg)
// out — matches the abstract FifoNetwork, and the check package verifies
// trace inclusion between them.
func FifoProtocolSystem(msgs int) Automaton {
	dataUniverse := make([][]int, 0, msgs*msgs)
	for seq := 0; seq < msgs; seq++ {
		for m := 0; m < msgs; m++ {
			dataUniverse = append(dataUniverse, []int{seq, m})
		}
	}
	ackUniverse := make([][]int, 0, msgs+1)
	for a := 0; a <= msgs; a++ {
		ackUniverse = append(ackUniverse, []int{a})
	}
	return Compose("FifoProtocol∘LossyChannels",
		[]string{"data.send", "data.deliver", "data.drop", "ack.send", "ack.deliver", "ack.drop"},
		NewFifoSender(0, msgs),
		&PacketChannel{Tag: "data", Universe: dataUniverse},
		&PacketChannel{Tag: "ack", Universe: ackUniverse},
		NewFifoReceiver(0, msgs),
	)
}
