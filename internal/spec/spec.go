// Package spec is the I/O-automaton specification framework of §3:
// behavioural specifications of networks and protocols as state machines
// with event-condition-action rules. Abstract specifications (the
// FifoNetwork and LossyNetwork of Fig. 2) use global state and are not
// executable; concrete specifications (the FifoProtocol of Fig. 3) only
// involve state and events local to one participant and compose with a
// network automaton by tying events together. The check package verifies
// trace inclusion between compositions and abstract specifications on
// bounded instances — the role Nuprl proofs play in the paper.
package spec

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies an action in an automaton's signature.
type Kind int8

const (
	// Input actions are controlled by the environment; IOA requires
	// automata to be input-enabled.
	Input Kind = iota
	// Output actions are controlled by the automaton and visible.
	Output
	// Internal actions are controlled by the automaton and hidden.
	Internal
)

// Event is one action instance: a name and its parameters.
type Event struct {
	Name   string
	Params []int
}

// String renders e.g. Send(1,0).
func (e Event) String() string {
	if len(e.Params) == 0 {
		return e.Name
	}
	parts := make([]string, len(e.Params))
	for i, p := range e.Params {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(parts, ","))
}

// Key is the canonical form used to match events across automata.
func (e Event) Key() string { return e.String() }

// Step is one transition: the event taken and the successor state.
type Step struct {
	Ev   Event
	Next State
}

// State is one automaton state. Key must canonically encode the state:
// two states are identical iff their keys are equal.
type State interface {
	Key() string
	// Steps enumerates every enabled transition from this state.
	Steps() []Step
}

// Automaton is a (bounded) I/O automaton.
type Automaton interface {
	Name() string
	// Initial returns the initial states.
	Initial() []State
	// Signature maps each action name to its kind. Parameters are not
	// part of the signature; all instances of a name share its kind.
	Signature() map[string]Kind
}

// ActionKind looks up an action's kind, defaulting to Internal for
// names outside the signature (convenient for composed automata that
// hide tied actions).
func ActionKind(a Automaton, name string) Kind {
	if k, ok := a.Signature()[name]; ok {
		return k
	}
	return Internal
}

// External reports whether an event is externally visible for the
// automaton (input or output).
func External(a Automaton, ev Event) bool {
	return ActionKind(a, ev.Name) != Internal
}

// --- generic helpers for building state keys ---

// KeyOf renders a labeled sequence of key parts.
func KeyOf(parts ...string) string { return strings.Join(parts, "|") }

// IntsKey renders an int slice compactly.
func IntsKey(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ",")
}

// PairsKey renders a sorted multiset of pairs.
func PairsKey(ps [][2]int) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("%d:%d", p[0], p[1])
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
