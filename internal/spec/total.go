package spec

import (
	"fmt"
)

// The total ordering protocol study of §3.1: the paper reports a manual
// proof of one of Ensemble's total ordering protocols (with [11]), which
// located a subtle bug. Here the sequencer protocol implemented by the
// total layer is modelled as an automaton over reliable FIFO channels
// (the service mnak provides — itself checked by FifoProtocolSystem, the
// same compositional split the paper uses) and checked against an
// abstract totally-ordered network.

// TotalNetwork is the abstract specification: multicasts enter a pending
// set, an internal Order step fixes each message's position in one
// global log, and every process delivers the log in order. Any total
// order is allowed; what is specified is that all processes agree on it.
type TotalNetwork struct {
	N, MsgsPerSender int
}

// Name implements Automaton.
func (t *TotalNetwork) Name() string { return "TotalNetwork" }

// Signature implements Automaton.
func (t *TotalNetwork) Signature() map[string]Kind {
	return map[string]Kind{"Cast": Input, "Order": Internal, "Deliver": Output}
}

// Initial implements Automaton.
func (t *TotalNetwork) Initial() []State {
	return []State{&totalNetState{a: t, ptr: make([]int, t.N)}}
}

// msgID packs (sender, index) into one int for compact keys.
func (t *TotalNetwork) msgID(p, i int) int { return p*t.MsgsPerSender + i }

type totalNetState struct {
	a       *TotalNetwork
	pending []int
	log     []int
	ptr     []int
	casted  map[int]bool
}

func (s *totalNetState) Key() string {
	return KeyOf("tn", IntsKey(s.pending), IntsKey(s.log), IntsKey(s.ptr))
}

func (s *totalNetState) clone() *totalNetState {
	cp := &totalNetState{
		a:       s.a,
		pending: append([]int(nil), s.pending...),
		log:     append([]int(nil), s.log...),
		ptr:     append([]int(nil), s.ptr...),
		casted:  map[int]bool{},
	}
	for k := range s.casted {
		cp.casted[k] = true
	}
	return cp
}

// Steps implements State.
func (s *totalNetState) Steps() []Step {
	var steps []Step
	// Cast(p, i): input, each message once.
	for p := 0; p < s.a.N; p++ {
		for i := 0; i < s.a.MsgsPerSender; i++ {
			id := s.a.msgID(p, i)
			if s.casted != nil && s.casted[id] {
				continue
			}
			next := s.clone()
			next.pending = append(next.pending, id)
			next.casted[id] = true
			steps = append(steps, Step{Ev: Event{Name: "Cast", Params: []int{p, i}}, Next: next})
		}
	}
	// Order: any pending message takes the next log position.
	for k, id := range s.pending {
		next := s.clone()
		next.pending = append(next.pending[:k], next.pending[k+1:]...)
		next.log = append(next.log, id)
		steps = append(steps, Step{Ev: Event{Name: "Order", Params: []int{id}}, Next: next})
	}
	// Deliver(q, p, i): strictly in log order per process.
	for q := 0; q < s.a.N; q++ {
		if s.ptr[q] >= len(s.log) {
			continue
		}
		id := s.log[s.ptr[q]]
		next := s.clone()
		next.ptr[q]++
		steps = append(steps, Step{
			Ev:   Event{Name: "Deliver", Params: []int{q, id / s.a.MsgsPerSender, id % s.a.MsgsPerSender}},
			Next: next,
		})
	}
	return steps
}

// TotalProtocol models the sequencer protocol of the total layer over
// reliable FIFO channels: rank 0 stamps its own casts at send time and
// assigns positions to other members' casts on arrival, members learn
// the announcement stream in order and deliver a position once they hold
// its message. Orderly is the protocol as implemented; with Orderly set
// to false the model delivers data on arrival — the subtle-bug variant
// the checker must reject.
type TotalProtocol struct {
	N, MsgsPerSender int
	// Orderly selects the correct protocol (true) or the buggy variant
	// that skips the ordering wait (false).
	Orderly bool
}

// Name implements Automaton.
func (t *TotalProtocol) Name() string { return "TotalProtocol" }

// Signature implements Automaton.
func (t *TotalProtocol) Signature() map[string]Kind {
	return map[string]Kind{
		"Cast":    Input,
		"xfer":    Internal, // channel head moves into a member
		"learn":   Internal, // a member learns the next announcement
		"Deliver": Output,
	}
}

// Initial implements Automaton.
func (t *TotalProtocol) Initial() []State {
	n := t.N
	st := &totalProtoState{
		a:         t,
		sent:      make([]int, n),
		got:       make([]map[int]bool, n),
		anncIdx:   make([]int, n),
		delivered: make([]int, n),
		dataCh:    make([][][]int, n),
	}
	for p := 0; p < n; p++ {
		st.got[p] = map[int]bool{}
		st.dataCh[p] = make([][]int, n)
	}
	return []State{st}
}

func (t *TotalProtocol) msgID(p, i int) int { return p*t.MsgsPerSender + i }

type totalProtoState struct {
	a *TotalProtocol

	// sent[p]: casts submitted by p so far.
	sent []int
	// dataCh[p][q]: FIFO channel of message ids from p to q (p ≠ q).
	dataCh [][][]int
	// got[q]: message ids held by q (own casts immediately).
	got []map[int]bool
	// announced: the sequencer's global order.
	announced []int
	// anncIdx[q]: announcements learned by q (rank 0 learns its own
	// instantly).
	anncIdx []int
	// delivered[q]: prefix of announced delivered by q.
	delivered []int
}

func (s *totalProtoState) Key() string {
	k := fmt.Sprintf("tp|%v|%v|%v|%v|", s.sent, s.announced, s.anncIdx, s.delivered)
	for p := range s.dataCh {
		for q := range s.dataCh[p] {
			if len(s.dataCh[p][q]) > 0 {
				k += fmt.Sprintf("c%d.%d:%v;", p, q, s.dataCh[p][q])
			}
		}
	}
	for q := range s.got {
		k += fmt.Sprintf("g%d:", q)
		for id := 0; id < s.a.N*s.a.MsgsPerSender; id++ {
			if s.got[q][id] {
				k += fmt.Sprintf("%d,", id)
			}
		}
		k += ";"
	}
	return k
}

func (s *totalProtoState) clone() *totalProtoState {
	n := s.a.N
	cp := &totalProtoState{
		a:         s.a,
		sent:      append([]int(nil), s.sent...),
		announced: append([]int(nil), s.announced...),
		anncIdx:   append([]int(nil), s.anncIdx...),
		delivered: append([]int(nil), s.delivered...),
		got:       make([]map[int]bool, n),
		dataCh:    make([][][]int, n),
	}
	for p := 0; p < n; p++ {
		cp.got[p] = map[int]bool{}
		for id, v := range s.got[p] {
			cp.got[p][id] = v
		}
		cp.dataCh[p] = make([][]int, n)
		for q := 0; q < n; q++ {
			cp.dataCh[p][q] = append([]int(nil), s.dataCh[p][q]...)
		}
	}
	return cp
}

// Steps implements State.
func (s *totalProtoState) Steps() []Step {
	var steps []Step
	n := s.a.N
	// Cast(p, i): the next message of sender p.
	for p := 0; p < n; p++ {
		if s.sent[p] >= s.a.MsgsPerSender {
			continue
		}
		i := s.sent[p]
		id := s.a.msgID(p, i)
		next := s.clone()
		next.sent[p]++
		next.got[p][id] = true // self-delivery via the local layer
		for q := 0; q < n; q++ {
			if q != p {
				next.dataCh[p][q] = append(next.dataCh[p][q], id)
			}
		}
		if p == 0 {
			// The sequencer stamps its own casts at send time.
			next.announced = append(next.announced, id)
			next.anncIdx[0] = len(next.announced)
		}
		steps = append(steps, Step{Ev: Event{Name: "Cast", Params: []int{p, i}}, Next: next})
	}
	// xfer: a channel head arrives.
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if len(s.dataCh[p][q]) == 0 {
				continue
			}
			id := s.dataCh[p][q][0]
			next := s.clone()
			next.dataCh[p][q] = next.dataCh[p][q][1:]
			next.got[q][id] = true
			if q == 0 && p != 0 {
				// The sequencer assigns the arrival its position.
				next.announced = append(next.announced, id)
				next.anncIdx[0] = len(next.announced)
			}
			steps = append(steps, Step{Ev: Event{Name: "xfer", Params: []int{p, q, id}}, Next: next})
		}
	}
	// learn: announcements propagate in order.
	for q := 1; q < n; q++ {
		if s.anncIdx[q] < len(s.announced) {
			next := s.clone()
			next.anncIdx[q]++
			steps = append(steps, Step{Ev: Event{Name: "learn", Params: []int{q, s.anncIdx[q]}}, Next: next})
		}
	}
	// Deliver.
	if s.a.Orderly {
		for q := 0; q < n; q++ {
			k := s.delivered[q]
			if k >= s.anncIdx[q] {
				continue
			}
			id := s.announced[k]
			if !s.got[q][id] {
				continue
			}
			next := s.clone()
			next.delivered[q]++
			steps = append(steps, Step{
				Ev:   Event{Name: "Deliver", Params: []int{q, id / s.a.MsgsPerSender, id % s.a.MsgsPerSender}},
				Next: next,
			})
		}
		return steps
	}
	// The buggy variant: deliver anything held, skipping the order wait.
	for q := 0; q < n; q++ {
		for id := range s.got[q] {
			if s.deliveredHas(q, id) {
				continue
			}
			next := s.clone()
			next.delivered[q]++ // count only; order ignored
			next.got[q][id] = false
			steps = append(steps, Step{
				Ev:   Event{Name: "Deliver", Params: []int{q, id / s.a.MsgsPerSender, id % s.a.MsgsPerSender}},
				Next: next,
			})
		}
	}
	return steps
}

func (s *totalProtoState) deliveredHas(q, id int) bool {
	return !s.got[q][id]
}

// Completed reports whether a state of this automaton is the bounded
// instance's legitimate end: every member has delivered every message.
func (t *TotalProtocol) Completed(s State) bool {
	ps, ok := s.(*totalProtoState)
	if !ok {
		return false
	}
	total := t.N * t.MsgsPerSender
	for _, d := range ps.delivered {
		if d != total {
			return false
		}
	}
	return true
}
