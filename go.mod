module ensemble

go 1.22
