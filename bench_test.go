package ensemble_test

// One benchmark per table and figure of the paper's evaluation (§4.2).
// Each reports the per-segment code latencies as custom metrics in the
// units the paper uses (ns here, µs there); `cmd/ensemble-bench` prints
// the same data formatted as the paper's tables.

import (
	"os"
	"runtime"
	"testing"

	"ensemble/internal/bench"
	"ensemble/internal/layers"
)

func benchLatency(b *testing.B, cfg bench.Config, names []string, size int) {
	b.Helper()
	seg, err := bench.MeasureCodeLatency(cfg, names, size, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(seg.DownStack, "ns/down-stack")
	b.ReportMetric(seg.DownTransport, "ns/down-transport")
	b.ReportMetric(seg.UpTransport, "ns/up-transport")
	b.ReportMetric(seg.UpStack, "ns/up-stack")
	b.ReportMetric(seg.Total(), "ns/total")
}

// Table 1(a): 10-layer stack code latency, 4-byte messages.

func BenchmarkTable1a_MACH(b *testing.B) { benchLatency(b, bench.MACH, layers.Stack10(), 4) }
func BenchmarkTable1a_IMP(b *testing.B)  { benchLatency(b, bench.IMP, layers.Stack10(), 4) }
func BenchmarkTable1a_FUNC(b *testing.B) { benchLatency(b, bench.FUNC, layers.Stack10(), 4) }

// Table 1(b): 4-layer stack code latency, 4-byte messages.

func BenchmarkTable1b_HAND(b *testing.B) { benchLatency(b, bench.HAND, layers.Stack4(), 4) }
func BenchmarkTable1b_MACH(b *testing.B) { benchLatency(b, bench.MACH, layers.Stack4(), 4) }
func BenchmarkTable1b_IMP(b *testing.B)  { benchLatency(b, bench.IMP, layers.Stack4(), 4) }
func BenchmarkTable1b_FUNC(b *testing.B) { benchLatency(b, bench.FUNC, layers.Stack4(), 4) }

// Figure 6: 10-layer stack code latency across message sizes.

func BenchmarkFigure6_MACH_4(b *testing.B)    { benchLatency(b, bench.MACH, layers.Stack10(), 4) }
func BenchmarkFigure6_MACH_24(b *testing.B)   { benchLatency(b, bench.MACH, layers.Stack10(), 24) }
func BenchmarkFigure6_MACH_100(b *testing.B)  { benchLatency(b, bench.MACH, layers.Stack10(), 100) }
func BenchmarkFigure6_MACH_1024(b *testing.B) { benchLatency(b, bench.MACH, layers.Stack10(), 1024) }
func BenchmarkFigure6_IMP_4(b *testing.B)     { benchLatency(b, bench.IMP, layers.Stack10(), 4) }
func BenchmarkFigure6_IMP_24(b *testing.B)    { benchLatency(b, bench.IMP, layers.Stack10(), 24) }
func BenchmarkFigure6_IMP_100(b *testing.B)   { benchLatency(b, bench.IMP, layers.Stack10(), 100) }
func BenchmarkFigure6_IMP_1024(b *testing.B)  { benchLatency(b, bench.IMP, layers.Stack10(), 1024) }
func BenchmarkFigure6_FUNC_4(b *testing.B)    { benchLatency(b, bench.FUNC, layers.Stack10(), 4) }
func BenchmarkFigure6_FUNC_24(b *testing.B)   { benchLatency(b, bench.FUNC, layers.Stack10(), 24) }
func BenchmarkFigure6_FUNC_100(b *testing.B)  { benchLatency(b, bench.FUNC, layers.Stack10(), 100) }
func BenchmarkFigure6_FUNC_1024(b *testing.B) { benchLatency(b, bench.FUNC, layers.Stack10(), 1024) }

// Table 2(a): send/recv rounds with runtime counters, original vs
// optimized. The allocation counters are the Go analogue of the paper's
// memory-reference and instruction counters.

func benchCounters(b *testing.B, cfg bench.Config) {
	b.Helper()
	b.ReportAllocs()
	c, err := bench.MeasureCounters(cfg, layers.Stack10(), 4, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(c.Mallocs)/float64(b.N), "allocs/round")
	b.ReportMetric(float64(c.AllocBytes)/float64(b.N), "allocB/round")
	b.ReportMetric(float64(c.WireBytes)/float64(b.N), "wireB/round")
}

func BenchmarkTable2a_OriginalStack(b *testing.B)  { benchCounters(b, bench.IMP) }
func BenchmarkTable2a_OptimizedStack(b *testing.B) { benchCounters(b, bench.MACH) }

// Sustained throughput: steady-state cast rounds with the transport on
// the measured path — the regression gate for the zero-allocation data
// path (§4, item 1: avoiding garbage-collection cycles). allocs/op and
// B/op cover only the timed region (setup is excluded by ResetTimer);
// the expectation for the steady state is 0 allocs/op.

func benchThroughput(b *testing.B, cfg bench.Config, names []string, size int) {
	b.Helper()
	benchThroughputRunner(b, cfg, names, size, bench.Immediate)
}

// The Batched variants put the wire batcher's frame encode and the
// receiver's walker decode on the measured path (flushing every 8
// rounds, so data frames carry ~8 sub-packets); the steady state must
// stay at 0 allocs/op — the batcher recycles its frame buffers. The
// BatchedDelta variants run the same path over the delta-compressed
// frame format, putting the delta encode and the reconstructing decode
// under the same zero-allocation gate.
func benchThroughputBatched(b *testing.B, cfg bench.Config, names []string, size int) {
	b.Helper()
	benchThroughputRunner(b, cfg, names, size, bench.Batched)
}

func benchThroughputBatchedDelta(b *testing.B, cfg bench.Config, names []string, size int) {
	b.Helper()
	benchThroughputRunner(b, cfg, names, size, bench.BatchedDelta)
}

func benchThroughputRunner(b *testing.B, cfg bench.Config, names []string, size int, mode bench.BatchMode) {
	b.Helper()
	var r *bench.ThroughputRunner
	var err error
	switch mode {
	case bench.Batched:
		r, err = bench.NewBatchedThroughputRunner(cfg, names, size)
	case bench.BatchedDelta:
		r, err = bench.NewBatchedDeltaThroughputRunner(cfg, names, size)
	default:
		r, err = bench.NewThroughputRunner(cfg, names, size)
	}
	if err != nil {
		b.Fatal(err)
	}
	// Reach steady state: pools warm, windows open. The warmup runs past
	// the 256-round housekeeping sweep boundary because the first round
	// after a sweep regrows a pooled buffer once; measuring from round
	// 513 exactly would charge that one-time growth to a 1x run.
	r.Run(520)
	before := r.Delivered()
	b.ReportAllocs()
	b.ResetTimer()
	r.Run(b.N)
	b.StopTimer()
	if got := r.Delivered() - before; got < b.N {
		b.Fatalf("%d rounds but only %d deliveries", b.N, got)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
	if bs := r.BatchStats(); bs.Frames > 0 {
		b.ReportMetric(float64(bs.SubPackets)/float64(bs.Frames), "subs/frame")
	}
}

func BenchmarkThroughput_10Layer_IMP(b *testing.B) {
	benchThroughput(b, bench.IMP, layers.Stack10(), 4)
}
func BenchmarkThroughput_10Layer_FUNC(b *testing.B) {
	benchThroughput(b, bench.FUNC, layers.Stack10(), 4)
}
func BenchmarkThroughput_10Layer_MACH(b *testing.B) {
	benchThroughput(b, bench.MACH, layers.Stack10(), 4)
}
func BenchmarkThroughput_4Layer_IMP(b *testing.B) {
	benchThroughput(b, bench.IMP, layers.Stack4(), 4)
}
func BenchmarkThroughput_4Layer_FUNC(b *testing.B) {
	benchThroughput(b, bench.FUNC, layers.Stack4(), 4)
}
func BenchmarkThroughput_4Layer_MACH(b *testing.B) {
	benchThroughput(b, bench.MACH, layers.Stack4(), 4)
}
func BenchmarkThroughput_4Layer_HAND(b *testing.B) {
	benchThroughput(b, bench.HAND, layers.Stack4(), 4)
}

func BenchmarkThroughput_10Layer_IMP_Batched(b *testing.B) {
	benchThroughputBatched(b, bench.IMP, layers.Stack10(), 4)
}
func BenchmarkThroughput_10Layer_FUNC_Batched(b *testing.B) {
	benchThroughputBatched(b, bench.FUNC, layers.Stack10(), 4)
}
func BenchmarkThroughput_10Layer_MACH_Batched(b *testing.B) {
	benchThroughputBatched(b, bench.MACH, layers.Stack10(), 4)
}
func BenchmarkThroughput_4Layer_MACH_Batched(b *testing.B) {
	benchThroughputBatched(b, bench.MACH, layers.Stack4(), 4)
}
func BenchmarkThroughput_4Layer_HAND_Batched(b *testing.B) {
	benchThroughputBatched(b, bench.HAND, layers.Stack4(), 4)
}
func BenchmarkThroughput_10Layer_MACH_BatchedDelta(b *testing.B) {
	benchThroughputBatchedDelta(b, bench.MACH, layers.Stack10(), 4)
}
func BenchmarkThroughput_10Layer_FUNC_BatchedDelta(b *testing.B) {
	benchThroughputBatchedDelta(b, bench.FUNC, layers.Stack10(), 4)
}

// The _Obs variants run the same steady-state workload with the obs
// substrate (metrics registry + flight recorder) live on the emit path.
// They carry the _10Layer_ tag deliberately: the bench gate's
// zero-allocation scan covers every 10-layer throughput benchmark, so
// observability-on is held to the same 0 allocs/op standard as
// observability-off (Gate 4).
func benchThroughputObs(b *testing.B, cfg bench.Config, names []string, size int, mode bench.BatchMode) {
	b.Helper()
	r, err := bench.NewObservedThroughputRunner(cfg, names, size, mode)
	if err != nil {
		b.Fatal(err)
	}
	r.Run(520)
	before := r.Delivered()
	b.ReportAllocs()
	b.ResetTimer()
	r.Run(b.N)
	b.StopTimer()
	if got := r.Delivered() - before; got < b.N {
		b.Fatalf("%d rounds but only %d deliveries", b.N, got)
	}
	if r.FlightRecorder().Track(0).Total() == 0 {
		b.Fatal("observed run recorded nothing")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
}

func BenchmarkThroughput_10Layer_MACH_BatchedDelta_Obs(b *testing.B) {
	benchThroughputObs(b, bench.MACH, layers.Stack10(), 4, bench.BatchedDelta)
}
func BenchmarkThroughput_10Layer_FUNC_Batched_Obs(b *testing.B) {
	benchThroughputObs(b, bench.FUNC, layers.Stack10(), 4, bench.Batched)
}

// The _ObsHist variants (Gate 8) run the observed workload and then
// assert the zero-alloc latency histograms actually sampled it: every
// emitted wire lands one log-linear bucket add (member<m>/wire_bytes).
// They carry the _10Layer_ tag so the zero-allocation scan (Gate 1)
// holds the histogram-instrumented path to 0 allocs/op too.
func benchThroughputObsHist(b *testing.B, cfg bench.Config, names []string, size int, mode bench.BatchMode) {
	b.Helper()
	r, err := bench.NewObservedThroughputRunner(cfg, names, size, mode)
	if err != nil {
		b.Fatal(err)
	}
	r.Run(520)
	before := r.Delivered()
	b.ReportAllocs()
	b.ResetTimer()
	r.Run(b.N)
	b.StopTimer()
	if got := r.Delivered() - before; got < b.N {
		b.Fatalf("%d rounds but only %d deliveries", b.N, got)
	}
	snap := r.Metrics()
	n, ok := snap.Get("member0/wire_bytes/count")
	if !ok || n == 0 {
		b.Fatalf("wire-size histogram sampled nothing (count=%d ok=%t)", n, ok)
	}
	p99, _ := snap.Get("member0/wire_bytes/p99")
	if p99 <= 0 {
		b.Fatalf("wire-size histogram has empty quantiles (p99=%d)", p99)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
	b.ReportMetric(float64(p99), "hist-p99-bytes")
}

func BenchmarkThroughput_10Layer_MACH_BatchedDelta_ObsHist(b *testing.B) {
	benchThroughputObsHist(b, bench.MACH, layers.Stack10(), 4, bench.BatchedDelta)
}
func BenchmarkThroughput_10Layer_FUNC_Batched_ObsHist(b *testing.B) {
	benchThroughputObsHist(b, bench.FUNC, layers.Stack10(), 4, bench.Batched)
}

// §4.2: the common-case-predicate check itself ("checking the CCPs takes
// only about 3 µs" on the paper's hardware).

func BenchmarkCCPCheck(b *testing.B) {
	d, err := bench.MeasureCCPCheck(layers.Stack10(), b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(d.Nanoseconds()), "ns/check")
}

// Ablation: the deferred-buffering optimization (§4, item 3) switched
// off — buffering back on the critical path. Compare the down-stack
// metric against BenchmarkTable1a_MACH.

func BenchmarkAblation_MACH_InlineEffects(b *testing.B) {
	seg, err := bench.MeasureMachInlineEffects(layers.Stack10(), 4, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(seg.DownStack, "ns/down-stack")
	b.ReportMetric(seg.Total(), "ns/total")
}

// N-member sustained throughput over the simulated network: the whole
// group (one goroutine per member when concurrent) with the transport
// and the 100Mb Ethernet model on the measured path. The reported
// virtual latency is the Figure-6 quantity measured end to end across
// the simulated link. Seq and Conc variants execute the identical
// delivery schedule (netsim.Cluster's determinism guarantee), so their
// msgs/sec difference is pure scheduling overhead or parallel speedup.

func benchThroughputNet(b *testing.B, cfg bench.Config, members, workers int) {
	benchThroughputNetMode(b, cfg, members, workers, 64, bench.Immediate)
}

// The Batched variants run the members' wire batching with the adaptive
// quantum (the unbatched ones run the immediate-mode ablation) on the
// classic frame format and report the observed coalescing factor; the
// BatchedDelta variants add delta header compression. Both report
// bytes/msg — bytes on the wire during the data phase per application
// cast — which is what the compression gate compares.
func benchThroughputNetBatched(b *testing.B, cfg bench.Config, members, workers int) {
	benchThroughputNetMode(b, cfg, members, workers, 64, bench.Batched)
}

func benchThroughputNetMode(b *testing.B, cfg bench.Config, members, workers, size int, mode bench.BatchMode) {
	b.Helper()
	rounds := b.N
	if rounds < 8 {
		rounds = 8
	}
	res, err := bench.MeasureNetThroughput(cfg, layers.Stack10(), members, size, rounds, 29, workers, mode)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.MsgsPerSec, "msgs/sec")
	b.ReportMetric(res.VirtualLatency, "virt-ns/delivery")
	b.ReportMetric(float64(res.Delivered)/float64(rounds), "deliveries/round")
	if mode != bench.Immediate {
		b.ReportMetric(res.SubsPerFrame, "subs/frame")
		b.ReportMetric(res.BytesPerMsg, "bytes/msg")
	}
}

func BenchmarkThroughputNet_3Members_IMP_Seq(b *testing.B) {
	benchThroughputNet(b, bench.IMP, 3, 1)
}
func BenchmarkThroughputNet_3Members_IMP_Conc(b *testing.B) {
	benchThroughputNet(b, bench.IMP, 3, 3)
}
func BenchmarkThroughputNet_5Members_MACH_Seq(b *testing.B) {
	benchThroughputNet(b, bench.MACH, 5, 1)
}
func BenchmarkThroughputNet_5Members_MACH_Conc(b *testing.B) {
	benchThroughputNet(b, bench.MACH, 5, 5)
}
func BenchmarkThroughputNet_8Members_FUNC_Seq(b *testing.B) {
	benchThroughputNet(b, bench.FUNC, 8, 1)
}
func BenchmarkThroughputNet_8Members_FUNC_Conc(b *testing.B) {
	benchThroughputNet(b, bench.FUNC, 8, 8)
}
func BenchmarkThroughputNet_3Members_IMP_Seq_Batched(b *testing.B) {
	benchThroughputNetBatched(b, bench.IMP, 3, 1)
}
func BenchmarkThroughputNet_5Members_MACH_Conc_Batched(b *testing.B) {
	benchThroughputNetBatched(b, bench.MACH, 5, 5)
}
func BenchmarkThroughputNet_8Members_FUNC_Seq_Batched(b *testing.B) {
	benchThroughputNetBatched(b, bench.FUNC, 8, 1)
}
func BenchmarkThroughputNet_8Members_FUNC_Conc_Batched(b *testing.B) {
	benchThroughputNetBatched(b, bench.FUNC, 8, 8)
}

// The compression gate ladder: the same 8-member MACH cast workload at
// the minimum stamped payload (8 bytes — header-dominated wires, the
// case delta compression exists for), classic frames vs intra-frame
// delta vs cross-frame delta chains with adaptive flush (the member
// default). The bench gate requires the cross-frame variant's bytes/msg
// to come in at no more than half the classic one; the intra-frame
// point stays in the sweep as the ablation between them.
func BenchmarkThroughputNet_8Members_MACH_Seq_Batched(b *testing.B) {
	benchThroughputNetMode(b, bench.MACH, 8, 1, 8, bench.Batched)
}
func BenchmarkThroughputNet_8Members_MACH_Seq_BatchedDelta(b *testing.B) {
	benchThroughputNetMode(b, bench.MACH, 8, 1, 8, bench.BatchedDelta)
}
func BenchmarkThroughputNet_8Members_MACH_Seq_BatchedCross(b *testing.B) {
	benchThroughputNetMode(b, bench.MACH, 8, 1, 8, bench.BatchedCross)
}

// The wire-format determinism probe behind Gate 7: the 8-member MACH
// workload with cross-frame delta and adaptive flush left on (plus a
// mid-run generation bump), run through Run and RunConcurrent and
// compared byte for byte. Reports identical=1 on a match.
func BenchmarkThroughputNet_8Members_MACH_XFrameIdentity(b *testing.B) {
	ok, err := bench.XFrameIdentityProbe(8, 29, scaleConcWorkers())
	if err != nil {
		b.Fatal(err)
	}
	identical := 0.0
	if ok {
		identical = 1
	}
	b.ReportMetric(identical, "identical")
}

// The causal-trace reconstruction probe behind Gate 8: the 8-member
// netsim reference workload's flight dump stitched into per-message
// spans. Reports the span count and spans-complete=1 when every
// delivered message mapped to a complete chain — origin cast, the
// frame off the origin, every member's receive and ordered delivery.
func BenchmarkThroughputNet_8Members_MACH_SpanRecon(b *testing.B) {
	stats, err := bench.SpanReconProbe(8, 16, 64, 29)
	if err != nil {
		b.Fatal(err)
	}
	complete := 0.0
	if stats.Spans > 0 && stats.Complete == stats.Spans {
		complete = 1
	}
	b.ReportMetric(float64(stats.Spans), "spans")
	b.ReportMetric(complete, "spans-complete")
}

// The observability overhead gate pair: the 8-member MACH delta-batched
// workload run with observability off and on (full registry +
// per-member flight tracks), alternating three pairs back to back in
// this process and taking the best of each side — a single pair's
// ratio swings ±15% with machine load, best-of-N is the noise-robust
// estimator of the true cost. The gate requires obs-ratio >= 0.97.
func BenchmarkThroughputNet_8Members_MACH_Seq_BatchedDelta_Obs(b *testing.B) {
	// Floor the per-measurement run length: a sub-100ms run's msgs/sec
	// swings with scheduler and frequency noise far more than any real
	// recorder cost, so the comparison needs runs long enough to
	// amortize it regardless of the -benchtime the caller picked.
	rounds := b.N
	if rounds < 600 {
		rounds = 600
	}
	var bestOff, bestOn float64
	var on bench.NetThroughput
	for i := 0; i < 3; i++ {
		runtime.GC() // equal heap footing for both sides of the pair
		off, err := bench.MeasureNetThroughput(bench.MACH, layers.Stack10(), 8, 8, rounds, 29, 1, bench.BatchedDelta)
		if err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		var onErr error
		on, onErr = bench.MeasureObservedNetThroughput(bench.MACH, layers.Stack10(), 8, 8, rounds, 29, 1, bench.BatchedDelta)
		if onErr != nil {
			b.Fatal(onErr)
		}
		if off.MsgsPerSec > bestOff {
			bestOff = off.MsgsPerSec
		}
		if on.MsgsPerSec > bestOn {
			bestOn = on.MsgsPerSec
		}
	}
	if hit, ok := on.Metrics.Get("member0/mach/ccp_hit"); !ok || hit == 0 {
		b.Fatalf("observed run shows no CCP bypass activity (hit=%d ok=%t)", hit, ok)
	}
	b.ReportMetric(bestOn, "msgs/sec")
	b.ReportMetric(bestOn/bestOff, "obs-ratio")
	b.ReportMetric(on.SubsPerFrame, "subs/frame")
}

// The multi-CCP dispatch gate pair: the mixed workload (ring sends,
// periodic casts, loss-forced retransmissions on the FIFO stack) run
// with the single-CCP baseline engine (data bypasses only) and with the
// full dispatch family (control acks and retransmissions specialized,
// profile-guided probe order). Both report interp-share — the fraction
// of routed events that fell through to the interpreted full stack.
// Gate 5 requires the multi-CCP share to come in at no more than half
// the single-CCP share on the identical workload.
func benchMixedTraffic(b *testing.B, multiCCP bool) {
	b.Helper()
	// Floor the round count: the share is a ratio of event populations,
	// and a handful of rounds would measure startup noise, not the
	// steady traffic mix.
	rounds := b.N
	if rounds < 600 {
		rounds = 600
	}
	res, err := bench.MeasureMixedTraffic(5, rounds, multiCCP, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.InterpShare(), "interp-share")
	b.ReportMetric(float64(res.TotalRouted())/float64(rounds), "routed/round")
	b.ReportMetric(float64(res.CtrlCompressed), "ctrl-compressed")
}

func BenchmarkMixedTraffic_SingleCCP(b *testing.B) { benchMixedTraffic(b, false) }
func BenchmarkMixedTraffic_MultiCCP(b *testing.B)  { benchMixedTraffic(b, true) }

// Member-count scaling sweep: the sharded scheduler and the tree-shaped
// membership at 16, 64, and 256 members (the last as 16 hierarchical
// groups of 16 bridged by a spine). Each point reports msgs/sec-member
// — throughput normalized by member count, the number Gate 6 bounds —
// and `identical`, a 1/0 flag from the determinism probe (a short traced
// workload at the same member count run through Run and RunConcurrent
// and compared byte for byte).
//
// The rounds are fixed per point rather than b.N-driven: one all-cast
// round costs O(members²) deliveries, so scaling 256 members to the
// -benchtime 150x the net pass uses would take tens of minutes. The
// fixed counts match cmd/ensemble-bench's -table scale, keeping the
// bench-gate pass wall-time bounded.
func benchThroughputNetScale(b *testing.B, run func(workers int) (bench.ScaleResult, error), workers int) {
	b.Helper()
	res, err := run(workers)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.MsgsPerSec, "msgs/sec")
	b.ReportMetric(res.PerMember, "msgs/sec-member")
	identical := 0.0
	if res.Identical {
		identical = 1
	}
	b.ReportMetric(identical, "identical")
}

// scaleConcWorkers sizes the concurrent scale runs like
// cmd/ensemble-bench: the machine's cores, clamped to [2, 8].
func scaleConcWorkers() int {
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	if w < 2 {
		w = 2
	}
	return w
}

// scale256Enabled gates the 256-member point. A 256-member all-cast
// round is ~65k deliveries; on small machines the point would dominate
// `make verify`'s wall time for no signal, so it skips below 4 cores —
// the same spirit as `make multiproc`'s environment check. Setting
// ENSEMBLE_SCALE_FORCE=1 runs it anyway (used to record the full sweep
// in the benchmark trajectory file); the bench gate accepts either the
// measured point or the skip marker.
func scale256Enabled() bool {
	return runtime.NumCPU() >= 4 || os.Getenv("ENSEMBLE_SCALE_FORCE") != ""
}

func BenchmarkThroughputNet_16Members_Scale_Seq(b *testing.B) {
	benchThroughputNetScale(b, func(w int) (bench.ScaleResult, error) { return bench.MeasureScale(16, 20, 31, w) }, 1)
}
func BenchmarkThroughputNet_16Members_Scale_Conc(b *testing.B) {
	benchThroughputNetScale(b, func(w int) (bench.ScaleResult, error) { return bench.MeasureScale(16, 20, 31, w) }, scaleConcWorkers())
}
func BenchmarkThroughputNet_64Members_Scale_Seq(b *testing.B) {
	benchThroughputNetScale(b, func(w int) (bench.ScaleResult, error) { return bench.MeasureScale(64, 8, 31, w) }, 1)
}
func BenchmarkThroughputNet_64Members_Scale_Conc(b *testing.B) {
	benchThroughputNetScale(b, func(w int) (bench.ScaleResult, error) { return bench.MeasureScale(64, 8, 31, w) }, scaleConcWorkers())
}
func BenchmarkThroughputNet_256Members_Scale_Seq(b *testing.B) {
	if !scale256Enabled() {
		b.Skip("256-member scale point needs >= 4 cores (ENSEMBLE_SCALE_FORCE=1 overrides)")
	}
	benchThroughputNetScale(b, func(w int) (bench.ScaleResult, error) { return bench.MeasureHierScale(16, 16, 3, 31, w) }, 1)
}
func BenchmarkThroughputNet_256Members_Scale_Conc(b *testing.B) {
	if !scale256Enabled() {
		b.Skip("256-member scale point needs >= 4 cores (ENSEMBLE_SCALE_FORCE=1 overrides)")
	}
	benchThroughputNetScale(b, func(w int) (bench.ScaleResult, error) { return bench.MeasureHierScale(16, 16, 3, 31, w) }, scaleConcWorkers())
}

// The UDP loopback benchmarks exercise the batched real-socket path:
// wires cross the kernel loopback device in coalesced datagrams rather
// than the simulator. Not part of the bench gate (kernel scheduling
// noise), but the same three metrics as the simulated runs, for
// side-by-side reading.
func benchThroughputUDP(b *testing.B, mode bench.BatchMode) {
	b.Helper()
	msgs := b.N
	if msgs < 64 {
		msgs = 64
	}
	res, err := bench.MeasureUDPThroughput(msgs, 8, 8, mode)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.MsgsPerSec, "msgs/sec")
	b.ReportMetric(res.BytesPerMsg, "bytes/msg")
	if mode != bench.Immediate {
		b.ReportMetric(res.SubsPerFrame, "subs/frame")
	}
}

func BenchmarkThroughputUDP_Immediate(b *testing.B)    { benchThroughputUDP(b, bench.Immediate) }
func BenchmarkThroughputUDP_Batched(b *testing.B)      { benchThroughputUDP(b, bench.Batched) }
func BenchmarkThroughputUDP_BatchedDelta(b *testing.B) { benchThroughputUDP(b, bench.BatchedDelta) }
