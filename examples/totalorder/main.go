// Total order: a replicated key-value register driven through the
// 10-layer stack's sequencer-based total ordering (the stack of Table
// 2(b)). Every member applies the same writes in the same order, so all
// replicas converge to identical state even though writes race from all
// members over a lossy network — the property whose proof effort located
// a subtle bug in Ensemble's implementation (§3.1).
package main

import (
	"fmt"
	"strings"

	"ensemble"
)

// register is the replicated state machine: last-writer-wins cells.
type register struct {
	rank  int
	cells map[string]string
	log   []string
}

func (r *register) apply(op []byte) {
	parts := strings.SplitN(string(op), "=", 2)
	r.cells[parts[0]] = parts[1]
	r.log = append(r.log, string(op))
}

func (r *register) digest() string {
	return fmt.Sprintf("x=%s y=%s z=%s (applied %d ops)",
		r.cells["x"], r.cells["y"], r.cells["z"], len(r.log))
}

func main() {
	const members = 3
	replicas := make([]*register, members)

	group, err := ensemble.NewGroup(members, ensemble.LossyNet(0.15), 7,
		ensemble.Stack10(), ensemble.Imp,
		func(rank int) ensemble.Handlers {
			r := &register{rank: rank, cells: map[string]string{}}
			replicas[rank] = r
			return ensemble.Handlers{
				OnCast: func(origin int, payload []byte) { r.apply(payload) },
			}
		})
	if err != nil {
		panic(err)
	}

	// Conflicting writes race from every member.
	for round := 0; round < 5; round++ {
		for rank, m := range group.Members {
			rank, m, round := rank, m, round
			group.Sim.After(int64(round)*10e6, func() {
				m.Cast([]byte(fmt.Sprintf("x=m%d.%d", rank, round)))
				m.Cast([]byte(fmt.Sprintf("y=m%d.%d", rank, round)))
				m.Cast([]byte(fmt.Sprintf("z=m%d.%d", rank, round)))
			})
		}
	}
	group.Run(int64(10e9))

	fmt.Println("replica digests (must be identical):")
	for rank, r := range replicas {
		fmt.Printf("  member %d: %s\n", rank, r.digest())
	}
	for rank := 1; rank < members; rank++ {
		if len(replicas[rank].log) != len(replicas[0].log) {
			panic("replicas diverged in length")
		}
		for i := range replicas[0].log {
			if replicas[rank].log[i] != replicas[0].log[i] {
				panic(fmt.Sprintf("replicas diverged at op %d: %q vs %q",
					i, replicas[rank].log[i], replicas[0].log[i]))
			}
		}
	}
	fmt.Println("all replicas applied the identical operation sequence — total order holds")
}
