// Failover: virtual synchrony under process failure. A group of four
// runs the membership stack; one member crashes mid-stream. The failure
// detector suspects it, the coordinator flushes the view (members stop
// sending and exchange receive vectors until every survivor holds the
// same casts), and a new view installs with a rebuilt protocol stack —
// Ensemble's "switching protocol stacks on the fly". Messages submitted
// during the flush are buffered and delivered in the next view, so the
// application never loses its own traffic.
package main

import (
	"fmt"

	"ensemble"
)

func main() {
	const members = 4
	deliveries := make([]int, members)
	views := make([][]string, members)

	group, err := ensemble.NewGroup(members, ensemble.LossyNet(0.05), 11,
		ensemble.StackVsync(), ensemble.Imp,
		func(rank int) ensemble.Handlers {
			return ensemble.Handlers{
				OnCast: func(origin int, payload []byte) { deliveries[rank]++ },
				OnView: func(v *ensemble.View) {
					views[rank] = append(views[rank], v.String())
					fmt.Printf("member %d installed %v\n", rank, v)
				},
				OnBlock: func() {
					fmt.Printf("member %d blocked for view change\n", rank)
				},
				OnSuspect: func(ranks []int) {
					fmt.Printf("member %d suspects %v\n", rank, ranks)
				},
			}
		})
	if err != nil {
		panic(err)
	}

	// A steady multicast stream from every member; member 3 falls silent
	// when it crashes at t=2s.
	crashed := false
	for i := 0; i < 30; i++ {
		i := i
		for r, m := range group.Members {
			r, m := r, m
			group.Sim.After(int64(i)*200e6, func() {
				if r == 3 && crashed {
					return
				}
				m.Cast([]byte(fmt.Sprintf("tick %d from %d", i, r)))
			})
		}
	}

	// Member 3 crashes two seconds in: it stops sending and drops off
	// the network.
	group.Sim.After(int64(2e9), func() {
		fmt.Println("--- member 3 crashes ---")
		crashed = true
		group.Net.Detach(group.Members[3].Addr())
	})

	group.Run(int64(40e9))

	fmt.Println()
	for r := 0; r < 3; r++ {
		fmt.Printf("member %d: %d casts delivered, final view %v\n",
			r, deliveries[r], group.Members[r].View())
	}
	v0 := group.Members[0].View()
	for r := 1; r < 3; r++ {
		if group.Members[r].View().ID != v0.ID {
			panic("survivors disagree on the final view")
		}
	}
	if v0.N() != 3 {
		panic(fmt.Sprintf("final view has %d members, want 3", v0.N()))
	}
	fmt.Println("survivors agree on the post-failure view; the group kept running")
}
