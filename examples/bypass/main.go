// Bypass: the paper's optimization pipeline end to end (§4.1). The
// optimizer derives per-layer optimization theorems, composes them into
// stack theorems, derives the compressed wire format from their free
// variables, compiles the bypass, and the run-time CCP check routes each
// event to the bypass or the original stack — while both stay
// semantically identical.
package main

import (
	"fmt"

	"ensemble"
)

func main() {
	names := ensemble.Stack10()
	addrs := []ensemble.Addr{1, 2}

	// One optimized engine per member; rank is a view constant the
	// optimizer specializes against.
	engines := make([]*ensemble.Engine, 2)
	delivered := make([][]string, 2)
	for m := 0; m < 2; m++ {
		m := m
		view := ensemble.NewView("bypass-demo", 1, addrs, m)
		eng, err := ensemble.NewOptimizedEngine(names, ensemble.DefaultLayerConfig(view), ensemble.Func)
		if err != nil {
			panic(err)
		}
		eng.Deliver = func(origin int, payload []byte, cast bool) {
			delivered[m] = append(delivered[m], fmt.Sprintf("%q from %d", payload, origin))
		}
		engines[m] = eng
	}
	// Back-to-back wire.
	for m := 0; m < 2; m++ {
		m := m
		engines[m].SendWire = func(cast bool, dst int, wire []byte) {
			// The wire image is only valid during this callback: snapshot
			// it before delivering (delivery can trigger further sends).
			engines[1-m].Packet(append([]byte(nil), wire...))
		}
	}

	fmt.Println("=== stack optimization theorems (sequencer member) ===")
	for _, th := range engines[0].Theorems() {
		fmt.Printf("%s\n\n", th)
	}

	// Common-case traffic: the bypass carries it.
	for i := 0; i < 1000; i++ {
		engines[0].Cast([]byte(fmt.Sprintf("fast-%d", i)))
	}
	// A jumbo cast misses the frag CCP: the very same engine routes it
	// through the original stack, and the receiver interoperates.
	engines[0].Cast(make([]byte, 64*1024))

	s0, s1 := engines[0].Stats(), engines[1].Stats()
	fmt.Printf("sender:   bypass=%d full-stack=%d\n", s0.DnBypass, s0.DnFull)
	fmt.Printf("receiver: bypass=%d full-stack=%d (uncompressed fallbacks: %d)\n",
		s1.UpBypass, s1.UpFull, s1.Uncompressed)
	fmt.Printf("receiver delivered %d messages (self-deliveries at sender: %d)\n",
		len(delivered[1]), len(delivered[0]))
	if len(delivered[1]) != 1001 {
		panic("missing deliveries")
	}
	fmt.Println("bypass and stack agreed on every message")
}
