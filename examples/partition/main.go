// Partition: split-brain and heal. A four-member group is cut into two
// islands; each side suspects the other, flushes, and installs its own
// view — two groups of two, both live. When the network heals, the
// partition coordinators discover each other through merge probes, the
// lower-address coordinator leads a two-phase merge (grant, acknowledge,
// adopt), and everyone reunites in one agreed view with total ordering
// running again.
//
// This example reaches into internal packages for the network's
// partition filter; applications using the public API would encounter
// partitions from the real network instead.
package main

import (
	"fmt"

	"ensemble/internal/core"
	"ensemble/internal/event"
	"ensemble/internal/layers"
	"ensemble/internal/netsim"
	"ensemble/internal/stack"
)

func main() {
	deliveries := make([]int, 4)
	g, err := core.NewGroup(4, netsim.Lossy(0.05), 33, layers.StackVsync(), stack.Imp,
		func(rank int) core.Handlers {
			return core.Handlers{
				OnCast: func(origin int, payload []byte) { deliveries[rank]++ },
				OnView: func(v *event.View) {
					fmt.Printf("member %d installed %v\n", rank, v)
				},
			}
		})
	if err != nil {
		panic(err)
	}
	g.Run(int64(2e9))

	fmt.Println("--- network partitions: {1,2} | {3,4} ---")
	g.Net.Partition(
		[]event.Addr{g.Members[0].Addr(), g.Members[1].Addr()},
		[]event.Addr{g.Members[2].Addr(), g.Members[3].Addr()},
	)
	g.Run(int64(30e9))

	// Both sides keep working independently.
	g.Members[0].Cast([]byte("side A lives"))
	g.Members[2].Cast([]byte("side B lives"))
	g.Run(int64(5e9))
	fmt.Printf("side A view: %v\nside B view: %v\n", g.Members[0].View(), g.Members[2].View())

	fmt.Println("--- network heals ---")
	g.Net.SetFilter(nil)
	g.Run(int64(60e9))

	for r, m := range g.Members {
		fmt.Printf("member %d final view: %v\n", r, m.View())
	}
	id := g.Members[0].View().ID
	for _, m := range g.Members[1:] {
		if m.View().ID != id {
			panic("members did not reunite")
		}
	}
	if g.Members[0].View().N() != 4 {
		panic("merged view incomplete")
	}

	// Fully ordered traffic in the merged view.
	before := append([]int(nil), deliveries...)
	for i := 0; i < 5; i++ {
		for _, m := range g.Members {
			m.Cast([]byte(fmt.Sprintf("reunited %d", i)))
		}
	}
	g.Run(int64(20e9))
	for r := range g.Members {
		if deliveries[r]-before[r] != 20 {
			panic(fmt.Sprintf("member %d delivered %d post-merge casts, want 20", r, deliveries[r]-before[r]))
		}
	}
	fmt.Println("partition healed: one view, traffic flowing, total order restored")
}
