// UDP chat: the same protocol stacks over real UDP sockets instead of
// the simulator — the library is transport-agnostic. By default the
// demo runs a three-member group on localhost inside one process (one
// goroutine per member) and exchanges a few messages; with flags it runs
// one member of a multi-process group:
//
//	udpchat -rank 0 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//
// started once per rank, each process joins the same group.
package main

import (
	"flag"
	"fmt"
	"strings"
	"sync"
	"time"

	"ensemble"
	"ensemble/internal/core"
	"ensemble/internal/event"
	"ensemble/internal/netsim"
	"ensemble/internal/stack"
)

func main() {
	rank := flag.Int("rank", -1, "this member's rank; -1 runs the in-process demo")
	peers := flag.String("peers", "", "comma-separated host:port list, one per rank")
	duration := flag.Duration("for", 3*time.Second, "how long to run")
	flag.Parse()

	if *rank < 0 {
		demo()
		return
	}
	list := strings.Split(*peers, ",")
	if *rank >= len(list) {
		panic("rank out of range of -peers")
	}
	if err := runMember(*rank, list, *duration, true, nil); err != nil {
		panic(err)
	}
}

// demo runs a whole group on localhost in one process.
func demo() {
	ports := []string{"127.0.0.1:17871", "127.0.0.1:17872", "127.0.0.1:17873"}
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := make([]int, len(ports))
	for r := range ports {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			onCast := func(origin int, payload []byte) {
				mu.Lock()
				counts[r]++
				mu.Unlock()
				fmt.Printf("[member %d] %q from member %d\n", r, payload, origin)
			}
			if err := runMember(r, ports, 3*time.Second, r == 0, onCast); err != nil {
				panic(err)
			}
		}()
	}
	wg.Wait()
	fmt.Printf("deliveries per member: %v\n", counts)
}

// runMember joins the group as one rank over UDP and chats.
func runMember(rank int, peerList []string, d time.Duration, chatty bool, onCast func(int, []byte)) error {
	addrs := make([]ensemble.Addr, len(peerList))
	peerMap := map[event.Addr]string{}
	for i, hp := range peerList {
		addrs[i] = ensemble.Addr(i + 1)
		peerMap[event.Addr(i+1)] = hp
	}
	udp, err := netsim.NewUDPNet(event.Addr(rank+1), peerList[rank], peerMap)
	if err != nil {
		return err
	}
	defer udp.Close()

	view := ensemble.NewView("udpchat", 1, addrs, rank)
	member, err := core.NewMember(udp, udp, view, ensemble.Stack10(), stack.Imp, core.Handlers{
		OnCast: func(origin int, payload []byte) {
			if onCast != nil {
				onCast(origin, payload)
			} else {
				fmt.Printf("[member %d] %q from member %d\n", rank, payload, origin)
			}
		},
	})
	if err != nil {
		return err
	}
	member.Start()

	// Chat on the run loop's goroutine.
	for i := 0; i < 5; i++ {
		i := i
		udp.After(int64(200*time.Millisecond)*int64(i+1), func() {
			member.Cast([]byte(fmt.Sprintf("msg %d from member %d", i, rank)))
		})
	}
	udp.After(int64(d), func() { udp.Close() })
	return udp.Run()
}
