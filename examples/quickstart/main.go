// Quickstart: a three-member process group exchanging reliable
// multicasts over a lossy simulated network, in a few lines of the
// public API. Every member delivers every message despite 20% packet
// loss, duplication, and reordering — the reliability layers repair the
// channel transparently.
package main

import (
	"fmt"

	"ensemble"
)

func main() {
	const members = 3

	// A property-driven configuration: ask for guarantees, get a stack
	// (paper §3.2). Reliable multicast with self-delivery and
	// fragmentation.
	stack, err := ensemble.SelectStack(
		ensemble.ReliableMcast, ensemble.SelfDelivery, ensemble.Fragmentation)
	if err != nil {
		panic(err)
	}
	fmt.Printf("selected stack (top first): %v\n\n", stack)

	group, err := ensemble.NewGroup(members, ensemble.LossyNet(0.20), 1, stack, ensemble.Imp,
		func(rank int) ensemble.Handlers {
			return ensemble.Handlers{
				OnCast: func(origin int, payload []byte) {
					fmt.Printf("member %d delivered %q from member %d\n", rank, payload, origin)
				},
			}
		})
	if err != nil {
		panic(err)
	}

	for i, m := range group.Members {
		m.Cast([]byte(fmt.Sprintf("hello from member %d", i)))
	}

	// Advance virtual time; retransmissions settle well within a second.
	group.Run(int64(5e9))

	for i, m := range group.Members {
		st := m.Stats()
		fmt.Printf("member %d: delivered %d casts (packets in %d, out %d)\n",
			i, st.CastsDelivered, st.PacketsIn, st.PacketsOut)
	}
}
