// Verify: the §3 correctness machinery. Composes the concrete
// FifoProtocol specification (Fig. 3) with lossy channels by tying
// events (§3.1), and exhaustively checks that every external trace of
// the composition is a trace of the abstract FifoNetwork (Fig. 2(a)).
// Then it checks a deliberately broken receiver — no duplicate
// suppression, no ordering — and prints the counterexample trace the
// checker finds, the way the paper's verification effort "located a
// subtle bug in the original implementation".
//
// This example uses the internal packages directly because it is part of
// the repository; external users drive the same machinery through
// cmd/ensemble-check.
package main

import (
	"errors"
	"fmt"

	"ensemble/internal/check"
	"ensemble/internal/layers"
	"ensemble/internal/spec"
)

func main() {
	fmt.Println("== trace inclusion: FifoProtocol ∘ LossyChannels ⊑ FifoNetwork ==")
	impl := spec.FifoProtocolSystem(2)
	abstract := &spec.FifoNetwork{N: 1, Msgs: 2}
	states, err := check.Reachable(impl, 2_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("composition has %d reachable states\n", states)
	if err := check.TraceInclusion(impl, abstract, 2_000_000); err != nil {
		panic(err)
	}
	fmt.Println("OK: the protocol implements FIFO delivery over loss, duplication, and reordering")

	fmt.Println("\n== configuration checking (§3.2) ==")
	for _, names := range [][]string{layers.Stack4(), layers.Stack10(), layers.StackVsync()} {
		gs, err := check.CheckStack(names)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%v\n  provides %v\n", names, gs)
	}
	// A misconfiguration: total order stacked over an unreliable base.
	bad := []string{layers.PartialAppl, layers.Total, layers.Local, layers.Bottom}
	if _, err := check.CheckStack(bad); err != nil {
		fmt.Printf("misconfiguration rejected as expected:\n  %v\n", err)
	} else {
		panic("misconfigured stack passed the adjacency check")
	}

	fmt.Println("\n== finding a protocol bug ==")
	broken := brokenSystem()
	err = check.TraceInclusion(broken, abstract, 2_000_000)
	var v *check.Violation
	if !errors.As(err, &v) {
		panic(fmt.Sprintf("broken protocol not caught: %v", err))
	}
	fmt.Printf("checker found the bug; counterexample trace:\n  %v\n", v)
}

// brokenReceiver ignores sequence numbers: duplicates and reordering
// leak through to the application.
type brokenReceiver struct{ msgs int }

func (b *brokenReceiver) Name() string { return "BrokenReceiver" }
func (b *brokenReceiver) Signature() map[string]spec.Kind {
	return map[string]spec.Kind{
		"data.deliver": spec.Input,
		"Deliver":      spec.Output,
		"ack.send":     spec.Output,
	}
}
func (b *brokenReceiver) Initial() []spec.State {
	return []spec.State{&brokenState{msgs: b.msgs}}
}

type brokenState struct {
	msgs    int
	pending []int
}

func (s *brokenState) Key() string { return "brok|" + spec.IntsKey(s.pending) }
func (s *brokenState) Steps() []spec.Step {
	var steps []spec.Step
	for seq := 0; seq < s.msgs; seq++ {
		for m := 0; m < s.msgs; m++ {
			next := &brokenState{msgs: s.msgs, pending: append(append([]int(nil), s.pending...), m)}
			if len(next.pending) > 3 {
				next.pending = next.pending[:3]
			}
			steps = append(steps, spec.Step{Ev: spec.Event{Name: "data.deliver", Params: []int{seq, m}}, Next: next})
		}
	}
	if len(s.pending) > 0 {
		next := &brokenState{msgs: s.msgs, pending: append([]int(nil), s.pending[1:]...)}
		steps = append(steps, spec.Step{Ev: spec.Event{Name: "Deliver", Params: []int{0, s.pending[0]}}, Next: next})
	}
	steps = append(steps, spec.Step{Ev: spec.Event{Name: "ack.send", Params: []int{0}}, Next: &brokenState{msgs: s.msgs, pending: append([]int(nil), s.pending...)}})
	return steps
}

func brokenSystem() spec.Automaton {
	return spec.Compose("Broken∘LossyChannels",
		[]string{"data.send", "data.deliver", "data.drop", "ack.send", "ack.deliver", "ack.drop"},
		spec.NewFifoSender(0, 2),
		&spec.PacketChannel{Tag: "data", Universe: [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}},
		&spec.PacketChannel{Tag: "ack", Universe: [][]int{{0}, {1}, {2}}},
		&brokenReceiver{msgs: 2},
	)
}
