# Ensemble reproduction — common development targets.

GO ?= go
# BENCH_OUT is where bench-gate records the parsed benchmark trajectory;
# override it to keep a run without clobbering the checked-in record.
BENCH_OUT ?= BENCH_PR10.json

.PHONY: all build test race verify bench bench-throughput bench-gate multiproc flight fuzz pooldebug clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race also vets: the engine and stacks are single-threaded by design,
# so the race detector plus vet is the cheap way to catch glue that
# violates that assumption.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# The pre-merge gate: vet, the full suite, and the internal packages
# under the race detector — the cluster tests in internal/core and
# internal/netsim run full stacks one-goroutine-per-member, so this is
# what proves the pooled hot path is safe under real concurrency.
verify:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/...
	$(MAKE) bench-gate
	$(MAKE) multiproc

# The paper-table benchmarks (Tables 1, 2 and Figure 6).
bench:
	$(GO) test -run xxx -bench . -benchtime 2000x .

# The sustained-throughput gate: the 10-layer cast path must report
# 0 allocs/op for IMP, FUNC and MACH (see EXPERIMENTS.md).
bench-throughput:
	$(GO) test -run xxx -bench BenchmarkThroughput -benchtime 5000x .

# The batching + observability + dispatch regression gate: the 10-layer
# two-node throughput benchmarks (batched, delta and observed included)
# must stay at 0 allocs/op, the 8-member batched network runs must
# coalesce >= 2 sub-packets per frame, cross-frame delta compression
# (the member default) must cut the 8-member MACH workload's bytes/msg
# by >= 50% against the classic frame format (with the intra-frame delta
# point present as the ablation), turning the metrics registry + flight
# recorder on must keep >= 97% of the unobserved 8-member throughput,
# the multi-CCP dispatch family must cut the mixed workload's
# interpreted share to <= 0.5x the single-CCP baseline, the
# XFrameIdentity probe must stay byte-identical between Run and
# RunConcurrent, and the observability plane must measure latency for
# free: histogram-instrumented (_ObsHist) benchmarks at 0 allocs/op,
# the obs-ratio bar with live histograms, and complete causal-span
# reconstruction of the 8-member netsim run (SpanRecon, Gate 8). The
# parsed numbers are recorded in $(BENCH_OUT).
# The unit side runs 100x, not 1x: at one measured round, a GC landing
# mid-measurement (emptied sync.Pool victim cache, one refill) counts a
# stray alloc against the whole op. 100 rounds amortize the blip to 0
# while any real per-round allocation still reports >= 1 allocs/op.
# The mixed side runs 1x: the measurement floors itself at 600 rounds.
# The net pass carries the member-count scaling sweep (_Scale_ points at
# 16/64/256; fixed internal round counts, Gate 6) and a hard -timeout so
# a scheduling regression at 256 members fails the gate instead of
# hanging verify; on machines under 4 cores the 256-member point skips
# itself (the gate accepts the skip marker; the net pass runs -v because
# plain -bench output omits SKIP lines entirely) — run with
# ENSEMBLE_SCALE_FORCE=1 to measure it anyway.
bench-gate:
	$(GO) test -run xxx -bench 'BenchmarkThroughput_' -benchtime 100x . > .bench_gate_unit.out
	$(GO) test -v -run xxx -bench 'BenchmarkThroughputNet_' -benchtime 150x -timeout 15m . > .bench_gate_net.out
	$(GO) test -run xxx -bench 'BenchmarkMixedTraffic_' -benchtime 1x . > .bench_gate_mixed.out
	$(GO) run ./cmd/bench-gate -unit .bench_gate_unit.out -net .bench_gate_net.out -mixed .bench_gate_mixed.out -out $(BENCH_OUT)
	rm -f .bench_gate_unit.out .bench_gate_net.out .bench_gate_mixed.out

# The multi-process equivalence gate: 4 ensemble-node processes on
# loopback run the seeded 10-layer MACH workload over real UDP and must
# deliver the exact per-member sequence of the in-process netsim run of
# the same seed (see DESIGN.md "Deployment"). The second run is the
# adversarial form: 8 processes with 5% seeded receive-side frame loss
# on every node and a forced mid-run generation bump, still required to
# match the loss-free reference byte for byte. Bounded wall time; skips
# itself (exit 0) when loopback UDP is unavailable; flight dumps from
# failed runs stay in .multiproc-artifacts/ for flight-diff.
multiproc:
	$(GO) build -o .ensemble-node.bin ./cmd/ensemble-node
	./.ensemble-node.bin -launch 4 -rounds 16 -size 128 -seed 42 -timeout 60s -artifacts .multiproc-artifacts
	./.ensemble-node.bin -launch 8 -rounds 8 -size 64 -seed 43 -loss 0.05 -lossseed 7 -bump 20 -timeout 90s -artifacts .multiproc-artifacts
	rm -f .ensemble-node.bin

# A short fuzzing smoke pass over the stateful wire-format decoders:
# the cross-frame walker under adversarial frames (seeded and cold
# mirrors) and the encode/decode round trip. The checked-in seed
# corpora under internal/transport/testdata/fuzz/ run as regular tests
# in every `make test`; this target additionally mutates for a few
# seconds per target.
fuzz:
	$(GO) test -run xxx -fuzz FuzzXFrameWalkLink -fuzztime 10s ./internal/transport/
	$(GO) test -run xxx -fuzz FuzzXFrameRoundTrip -fuzztime 10s ./internal/transport/

# A flight recording of the standard 8-member MACH delta-batched
# workload, exported as Chrome trace_event JSON — open flight.trace.json
# in Perfetto (ui.perfetto.dev) or chrome://tracing; one track per
# member.
flight:
	$(GO) run ./cmd/ensemble-bench -flight flight.trace.json

# The full test suite with pool debugging forced on everywhere.
pooldebug:
	ENSEMBLE_POOLDEBUG=1 $(GO) test ./...

clean:
	$(GO) clean
	rm -f ensemble.test *.prof *.pprof flight.trace.json .bench_gate_*.out .ensemble-node.bin
	rm -rf .multiproc-artifacts
