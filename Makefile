# Ensemble reproduction — common development targets.

GO ?= go

.PHONY: all build test race verify bench bench-throughput pooldebug clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race also vets: the engine and stacks are single-threaded by design,
# so the race detector plus vet is the cheap way to catch glue that
# violates that assumption.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# The pre-merge gate: vet, the full suite, and the internal packages
# under the race detector — the cluster tests in internal/core and
# internal/netsim run full stacks one-goroutine-per-member, so this is
# what proves the pooled hot path is safe under real concurrency.
verify:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/...

# The paper-table benchmarks (Tables 1, 2 and Figure 6).
bench:
	$(GO) test -run xxx -bench . -benchtime 2000x .

# The sustained-throughput gate: the 10-layer cast path must report
# 0 allocs/op for IMP, FUNC and MACH (see EXPERIMENTS.md).
bench-throughput:
	$(GO) test -run xxx -bench BenchmarkThroughput -benchtime 5000x .

# The full test suite with pool debugging forced on everywhere.
pooldebug:
	ENSEMBLE_POOLDEBUG=1 $(GO) test ./...

clean:
	$(GO) clean
	rm -f ensemble.test *.prof
