# Ensemble reproduction — common development targets.

GO ?= go

.PHONY: all build test race verify bench bench-throughput bench-gate pooldebug clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race also vets: the engine and stacks are single-threaded by design,
# so the race detector plus vet is the cheap way to catch glue that
# violates that assumption.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# The pre-merge gate: vet, the full suite, and the internal packages
# under the race detector — the cluster tests in internal/core and
# internal/netsim run full stacks one-goroutine-per-member, so this is
# what proves the pooled hot path is safe under real concurrency.
verify:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/...
	$(MAKE) bench-gate

# The paper-table benchmarks (Tables 1, 2 and Figure 6).
bench:
	$(GO) test -run xxx -bench . -benchtime 2000x .

# The sustained-throughput gate: the 10-layer cast path must report
# 0 allocs/op for IMP, FUNC and MACH (see EXPERIMENTS.md).
bench-throughput:
	$(GO) test -run xxx -bench BenchmarkThroughput -benchtime 5000x .

# The batching regression gate: the 10-layer two-node throughput
# benchmarks (batched and delta included) must stay at 0 allocs/op, the
# 8-member batched network runs must coalesce >= 2 sub-packets per
# frame, and delta header compression must cut the 8-member MACH
# workload's bytes/msg by >= 25% against the classic frame format. The
# parsed numbers are recorded in BENCH_PR4.json.
bench-gate:
	$(GO) test -run xxx -bench 'BenchmarkThroughput_' -benchtime 1x . > .bench_gate_unit.out
	$(GO) test -run xxx -bench 'BenchmarkThroughputNet_' -benchtime 150x . > .bench_gate_net.out
	$(GO) run ./cmd/bench-gate -unit .bench_gate_unit.out -net .bench_gate_net.out -out BENCH_PR4.json
	rm -f .bench_gate_unit.out .bench_gate_net.out

# The full test suite with pool debugging forced on everywhere.
pooldebug:
	ENSEMBLE_POOLDEBUG=1 $(GO) test ./...

clean:
	$(GO) clean
	rm -f ensemble.test *.prof
